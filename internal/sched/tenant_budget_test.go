package sched

import (
	"context"
	"sync"
	"testing"
	"time"
)

// acquireClaims is acquireLeases generalised to full Claims: a background
// goroutine keeps polling already-held leases (standing in for running
// jobs' between-step polls) so waiting acquires can claim freed cores, then
// every lease is polled to convergence.
func acquireClaims(t *testing.T, b *CoreBudget, claims []Claim) []*Lease {
	t.Helper()
	leases := make([]*Lease, len(claims))
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			mu.Lock()
			for _, l := range leases {
				if l != nil {
					l.Workers()
				}
			}
			mu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for i, c := range claims {
		l, err := b.AcquireClaim(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		leases[i] = l
		mu.Unlock()
	}
	close(done)
	settle(leases)
	return leases
}

func TestCoreBudgetTenantFairShare(t *testing.T) {
	// Tenant A floods the stream with three jobs, one at priority 5;
	// tenant B submits a single priority-0 job. Fair share divides the 8
	// cores 4/4 across the TENANTS first — B's lone job gets the whole
	// tenant half — and only then does A's priority-5 job win A's
	// internal remainder. Tenancy beats priority: B's priority-0 job
	// out-leases A's priority-5 one.
	b := NewCoreBudget(8)
	leases := acquireClaims(t, b, []Claim{
		{Tenant: "a", Priority: 5},
		{Tenant: "a"},
		{Tenant: "a"},
		{Tenant: "b"},
	})
	got := shares(leases)
	want := []int{2, 1, 1, 4}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shares %v, want %v", got, want)
		}
	}
	held := b.HeldByTenant()
	if held["a"] != 4 || held["b"] != 4 {
		t.Fatalf("HeldByTenant = %v, want a:4 b:4", held)
	}
}

func TestCoreBudgetTenantCap(t *testing.T) {
	// A capped tenant's surplus flows to the uncapped one: with tenant A
	// capped at 2 cores, its two jobs keep one core each and B's single
	// job absorbs the remaining six.
	b := NewCoreBudget(8)
	leases := acquireClaims(t, b, []Claim{
		{Tenant: "a", TenantCores: 2},
		{Tenant: "a", TenantCores: 2},
		{Tenant: "b"},
	})
	got := shares(leases)
	want := []int{1, 1, 6}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shares %v, want %v", got, want)
		}
	}
	if held := b.Held(); held != 8 {
		t.Fatalf("held %d, want the full budget", held)
	}
}

func TestCoreBudgetTenantReleaseRebalances(t *testing.T) {
	// When one tenant's jobs finish, the freed half of the machine flows
	// to the remaining tenant as its jobs poll between steps.
	b := NewCoreBudget(8)
	leases := acquireClaims(t, b, []Claim{
		{Tenant: "a"},
		{Tenant: "a"},
		{Tenant: "b"},
	})
	if got := shares(leases); got[0]+got[1] != 4 || got[2] != 4 {
		t.Fatalf("initial shares %v, want a-pair summing 4 and b at 4", got)
	}
	leases[2].Release()
	settle(leases[:2])
	if got := shares(leases[:2]); got[0]+got[1] != 8 {
		t.Fatalf("shares after release %v, want the full budget", got)
	}
}

func TestCoreBudgetUntaggedClaimMatchesLegacy(t *testing.T) {
	// Zero-valued Claims must reproduce the single-level arithmetic
	// exactly: same division TestCoreBudgetPriorityRemainder proves for
	// AcquireBounded.
	b := NewCoreBudget(7)
	leases := acquireClaims(t, b, []Claim{
		{}, {Priority: 5}, {},
	})
	got := shares(leases)
	want := []int{2, 3, 2}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shares %v, want %v", got, want)
		}
	}
}

func TestAcquireClaimRejectsBadClaims(t *testing.T) {
	b := NewCoreBudget(4)
	for name, c := range map[string]Claim{
		"negative min":        {Min: -1},
		"negative tenant cap": {TenantCores: -2},
		"max below min":       {Min: 3, Max: 2},
	} {
		if _, err := b.AcquireClaim(context.Background(), c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
