package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAuditRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	recs := []AuditRecord{
		{UnixNano: now, Tenant: "alice", Outcome: "accept", SpecHash: "abc123", JobID: 7},
		{UnixNano: now + 1, Outcome: "401", Reason: "unknown bearer token"},
		{UnixNano: now + 2, Tenant: "bob", Outcome: "429", Reason: "rate-limited"},
	}
	for _, r := range recs {
		if err := a.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Concurrent read without the writer's lock: the log is append-only.
	got, err := ReadAuditLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
	a.Close()

	// Reopen appends after the existing records, never over them.
	a2, err := OpenAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if err := a2.Append(AuditRecord{UnixNano: now + 3, Outcome: "503", Reason: "draining"}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAuditLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Outcome != "503" {
		t.Fatalf("after reopen: %+v", got)
	}
}

func TestAuditTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(AuditRecord{Outcome: "accept"}); err != nil {
		t.Fatal(err)
	}
	a.Close()

	path := filepath.Join(dir, auditName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x12}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	a2, err := OpenAudit(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if err := a2.Append(AuditRecord{Outcome: "401"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuditLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Outcome != "accept" || got[1].Outcome != "401" {
		t.Fatalf("after torn tail: %+v", got)
	}
}

func TestReadAuditLogMissingFile(t *testing.T) {
	got, err := ReadAuditLog(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("missing audit log: %v, %v", got, err)
	}
}
