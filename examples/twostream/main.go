// Two-stream instability: two counter-streaming electron beams are linearly
// unstable — the field energy grows exponentially, then saturates by
// trapping particles into the famous phase-space vortex. The run prints the
// growth history and verifies positivity of f through the strongly nonlinear
// stage, exactly what the paper's MP/PP limiters are for.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
)

func main() {
	log.SetFlags(0)
	const (
		k     = 0.2
		v0    = 2.4
		vth   = 0.5
		alpha = 1e-3
		dt    = 0.1
		steps = 600
	)
	s, err := vlasov6d.NewPlasmaSolver(64, 128, 2*math.Pi/k, 8)
	if err != nil {
		log.Fatal(err)
	}
	s.TwoStreamInit(alpha, k, v0, vth)
	m0 := s.TotalMass()
	e0 := s.FieldEnergy()

	fmt.Printf("two-stream instability: beams at ±%.1f, k = %.2f\n", v0, k)
	fmt.Printf("%8s %14s\n", "t", "field energy")
	peakE := e0
	// Unified runner with a fixed dt; the growth history is recorded by the
	// per-step observer.
	_, err = vlasov6d.Run(context.Background(), s, steps*dt,
		vlasov6d.WithFixedDT(dt),
		vlasov6d.WithMaxSteps(steps),
		vlasov6d.WithObserver(func(i int, _ vlasov6d.Solver) error {
			e := s.FieldEnergy()
			if e > peakE {
				peakE = e
			}
			if i%40 == 0 {
				fmt.Printf("%8.1f %14.6e\n", float64(i)*dt, e)
			}
			return nil
		}))
	if err != nil {
		log.Fatal(err)
	}
	minF := math.Inf(1)
	for _, v := range s.F {
		if v < minF {
			minF = v
		}
	}
	fmt.Printf("\nfield energy grew %.1e× before saturation\n", peakE/e0)
	fmt.Printf("mass conservation: drift %+.2e\n", (s.TotalMass()-m0)/m0)
	fmt.Printf("minimum of f      : %.3e (positivity preserved: %v)\n", minF, minF >= 0)
}
