package analysis

import (
	"math"
	"testing"
)

func TestDecayFitRecoversKnownRate(t *testing.T) {
	// E(t) = e^{2γt}·cos²(ωt) has peaks on the e^{2γt} envelope.
	const gamma, omega, dt = -0.15, 1.4, 0.01
	var f DecayFit
	for i := 0; i < 3000; i++ {
		tt := float64(i) * dt
		c := math.Cos(omega * tt)
		f.Add(tt, math.Exp(2*gamma*tt)*c*c)
	}
	if f.Peaks() < 5 {
		t.Fatalf("only %d peaks detected", f.Peaks())
	}
	if got := f.Gamma(); math.Abs(got-gamma) > 1e-3 {
		t.Fatalf("fitted γ = %v, want %v", got, gamma)
	}
}

func TestDecayFitNeedsTwoPeaks(t *testing.T) {
	var f DecayFit
	f.Add(0, 1)
	f.Add(1, 2)
	f.Add(2, 1) // first peak at t=1
	if f.Peaks() != 1 {
		t.Fatalf("peaks %d", f.Peaks())
	}
	if f.Gamma() != 0 {
		t.Fatalf("γ %v before two peaks", f.Gamma())
	}
}
