package catalog

// The built-in scenarios: every workload shape the repository's examples
// and commands run, declared once with typed parameters so the service
// layer can instantiate them from JSON. The configurations default to the
// small, laptop-sized versions the examples use — a control plane accepting
// remote work should not default to a Fugaku-sized campaign.

import (
	"fmt"
	"math"
	"os"

	"vlasov6d/internal/advect"
	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/hybrid"
	"vlasov6d/internal/plasma"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/snapio"
)

// Default returns a catalog with every built-in scenario registered. It
// panics on a registration error: the built-ins are compile-time data and
// a bad declaration is a programmer error, not a runtime condition.
func Default() *Catalog {
	c := New()
	for _, sc := range builtins() {
		if err := c.Register(sc); err != nil {
			panic(err)
		}
	}
	return c
}

// plasmaParams are the parameters shared by the 1D1V plasma scenarios: the
// scheme × resolution axes the sweep campaigns scan, plus the physical
// perturbation knobs.
func plasmaParams(nx, nv int, k, alpha float64) []Param {
	return []Param{
		{Name: "scheme", Kind: String, Default: "slmpp5", Enum: advect.Names(),
			Help: "periodic x-drift advection scheme"},
		{Name: "nx", Kind: Int, Default: nx, Min: 6, Max: 4096, HasRange: true,
			Help: "spatial cells"},
		{Name: "nv", Kind: Int, Default: nv, Min: 6, Max: 8192, HasRange: true,
			Help: "velocity cells"},
		{Name: "k", Kind: Float, Default: k, Min: 1e-3, Max: 10, HasRange: true,
			Help: "perturbation wavenumber (Debye-length units); box L = 2π/k"},
		{Name: "alpha", Kind: Float, Default: alpha, Min: 0, Max: 1, HasRange: true,
			Help: "perturbation amplitude"},
		{Name: "vmax", Kind: Float, Default: 8.0, Min: 1, Max: 64, HasRange: true,
			Help: "velocity-space half-extent"},
	}
}

// buildPlasma allocates a 1D1V solver from the shared parameters, pinned to
// the job's construction-time core share.
func buildPlasma(v Values, workers int) (*plasma.Solver, error) {
	s, err := plasma.NewWithScheme(v.Int("nx"), v.Int("nv"),
		2*math.Pi/v.Float("k"), v.Float("vmax"), v.Str("scheme"))
	if err != nil {
		return nil, err
	}
	if workers > 0 {
		s.SetWorkers(workers)
	}
	return s, nil
}

// restorePlasma rebuilds a 1D1V solver from a checkpoint and rejects a
// snapshot whose discretisation does not match the spec — the job name
// keys the checkpoint directory, but a stale directory must not silently
// resume a different problem.
func restorePlasma(v Values, path string, workers int) (runner.Solver, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := plasma.Restore(f)
	if err != nil {
		return nil, err
	}
	if s.NX != v.Int("nx") || s.NV != v.Int("nv") || s.Scheme() != v.Str("scheme") {
		return nil, fmt.Errorf("catalog: snapshot %s is %s@%dx%d, spec wants %s@%dx%d",
			path, s.Scheme(), s.NX, s.NV, v.Str("scheme"), v.Int("nx"), v.Int("nv"))
	}
	// The domain geometry must match too: same grid under a different k
	// (box length) or vmax is a physically different problem, and resuming
	// it under this spec's label would be silent corruption. The spec's L
	// is computed by the exact expression Build used, so equality is exact
	// for a matching spec.
	if wantL := 2 * math.Pi / v.Float("k"); s.L != wantL || s.VMax != v.Float("vmax") {
		return nil, fmt.Errorf("catalog: snapshot %s has domain L=%g vmax=%g, spec wants L=%g vmax=%g",
			path, s.L, s.VMax, wantL, v.Float("vmax"))
	}
	if workers > 0 {
		s.SetWorkers(workers)
	}
	return s, nil
}

// hybridParams are the parameters shared by the cosmological scenarios.
// The extra axes (grid shapes) are added per scenario.
func hybridParams() []Param {
	return []Param{
		{Name: "box", Kind: Float, Default: 200.0, Min: 1, Max: 10000, HasRange: true,
			Help: "comoving box size (h⁻¹Mpc)"},
		{Name: "npartside", Kind: Int, Default: 8, Min: 2, Max: 256, HasRange: true,
			Help: "CDM particles per side"},
		{Name: "mnu", Kind: Float, Default: 0.4, Min: 0, Max: 4, HasRange: true,
			Help: "total neutrino mass ΣMν (eV)"},
		{Name: "seed", Kind: Int, Default: 1, Help: "initial-condition random seed"},
		{Name: "pmfactor", Kind: Int, Default: 2, Min: 1, Max: 8, HasRange: true,
			Help: "PM-mesh refinement over the Vlasov grid"},
		{Name: "ainit", Kind: Float, Default: 1.0 / 11, Min: 1e-3, Max: 1, HasRange: true,
			Help: "initial scale factor (z = 1/a − 1)"},
	}
}

// hybridConfig assembles the shared cosmological Config from values.
func hybridConfig(v Values, workers int) hybrid.Config {
	return hybrid.Config{
		Par:       cosmo.Planck2015(v.Float("mnu")),
		Box:       v.Float("box"),
		NPartSide: v.Int("npartside"),
		PMFactor:  v.Int("pmfactor"),
		Seed:      int64(v.Int("seed")),
		Workers:   workers,
	}
}

// restoreHybrid rebuilds a hybrid simulation from a snapio checkpoint with
// the config the values describe; shape mismatches surface as hybrid
// install errors.
func restoreHybrid(cfg hybrid.Config, path string) (runner.Solver, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := snapio.Read(f)
	if err != nil {
		return nil, err
	}
	return hybrid.Restore(cfg, snap)
}

func builtins() []Scenario {
	landau := Scenario{
		Name:        "landau",
		Description: "1D1V Landau damping: Langmuir wave decay at the kinetic-theory rate — the scheme × resolution validation grid",
		Params: append(plasmaParams(32, 64, 0.5, 0.01),
			Param{Name: "vth", Kind: Float, Default: 1.0, Min: 1e-3, Max: 16, HasRange: true,
				Help: "thermal speed"}),
		DefaultUntil: 25,
		Build: func(v Values, workers int) (runner.Solver, error) {
			s, err := buildPlasma(v, workers)
			if err != nil {
				return nil, err
			}
			s.LandauInit(v.Float("alpha"), v.Float("k"), v.Float("vth"))
			return s, nil
		},
		Restore: restorePlasma,
	}

	twostream := Scenario{
		Name:        "twostream",
		Description: "1D1V two-stream instability: exponential growth and nonlinear trapping of counter-streaming beams",
		Params: append(plasmaParams(64, 128, 0.2, 1e-3),
			Param{Name: "v0", Kind: Float, Default: 2.4, Min: 0, Max: 32, HasRange: true,
				Help: "beam drift speed"},
			Param{Name: "vth", Kind: Float, Default: 0.5, Min: 1e-3, Max: 16, HasRange: true,
				Help: "beam thermal spread"}),
		DefaultUntil: 40,
		Build: func(v Values, workers int) (runner.Solver, error) {
			s, err := buildPlasma(v, workers)
			if err != nil {
				return nil, err
			}
			s.TwoStreamInit(v.Float("alpha"), v.Float("k"), v.Float("v0"), v.Float("vth"))
			return s, nil
		},
		Restore: restorePlasma,
	}

	gridParams := []Param{
		{Name: "ngrid", Kind: Int, Default: 8, Min: 6, Max: 64, HasRange: true,
			Help: "Vlasov spatial cells per side"},
		{Name: "nu", Kind: Int, Default: 8, Min: 6, Max: 64, HasRange: true,
			Help: "velocity cells per side"},
		{Name: "scheme", Kind: String, Default: "slmpp5", Enum: advect.Names(),
			Help: "Vlasov advection scheme"},
	}

	hybridSc := Scenario{
		Name:         "hybrid",
		Description:  "hybrid Vlasov/N-body cosmology: neutrinos on the 6D phase-space grid coupled to TreePM CDM (small config)",
		Params:       append(hybridParams(), gridParams...),
		DefaultUntil: 0.2,
		Build: func(v Values, workers int) (runner.Solver, error) {
			cfg := hybridConfig(v, workers)
			cfg.NGrid = v.Int("ngrid")
			cfg.NU = v.Int("nu")
			cfg.Scheme = v.Str("scheme")
			return hybrid.New(cfg, v.Float("ainit"))
		},
		Restore: func(v Values, path string, workers int) (runner.Solver, error) {
			cfg := hybridConfig(v, workers)
			cfg.NGrid = v.Int("ngrid")
			cfg.NU = v.Int("nu")
			cfg.Scheme = v.Str("scheme")
			return restoreHybrid(cfg, path)
		},
	}

	nbody := Scenario{
		Name:         "nbody",
		Description:  "pure N-body control run: TreePM CDM only, the neutrino-free baseline",
		Params:       hybridParams(),
		DefaultUntil: 0.2,
		Build: func(v Values, workers int) (runner.Solver, error) {
			cfg := hybridConfig(v, workers)
			cfg.NoNeutrino = true
			return hybrid.New(cfg, v.Float("ainit"))
		},
		Restore: func(v Values, path string, workers int) (runner.Solver, error) {
			cfg := hybridConfig(v, workers)
			cfg.NoNeutrino = true
			return restoreHybrid(cfg, path)
		},
	}

	shotnoise := Scenario{
		Name:        "shotnoise",
		Description: "ν-particle baseline (§5.4): TianNu-style particle neutrinos whose moments carry the shot noise the Vlasov grid avoids",
		Params: append(hybridParams(),
			// NGrid/NU still size the PM mesh and the moment grids the
			// baseline is compared on, even though the neutrinos are
			// particles here.
			Param{Name: "ngrid", Kind: Int, Default: 8, Min: 6, Max: 64, HasRange: true,
				Help: "spatial cells per side (PM-mesh base)"},
			Param{Name: "nu", Kind: Int, Default: 8, Min: 6, Max: 64, HasRange: true,
				Help: "velocity cells per side"},
			Param{Name: "nnuside", Kind: Int, Default: 0, Min: 0, Max: 512, HasRange: true,
				Help: "neutrino particles per side (0 = 2·npartside, the paper's ratio; otherwise ≥ 2)"}),
		DefaultUntil: 0.2,
		Check: func(v Values) error {
			// The range cannot express "0 (defaulted) or ≥ 2"; a bare 1
			// would otherwise fail only on the worker, inside hybrid's
			// config validation.
			if n := v.Int("nnuside"); n == 1 {
				return fmt.Errorf("nnuside must be 0 (selects 2·npartside) or ≥ 2, got 1")
			}
			return nil
		},
		Build: func(v Values, workers int) (runner.Solver, error) {
			cfg := hybridConfig(v, workers)
			cfg.NGrid = v.Int("ngrid")
			cfg.NU = v.Int("nu")
			cfg.NuParticles = true
			cfg.NNuSide = v.Int("nnuside")
			return hybrid.New(cfg, v.Float("ainit"))
		},
		Restore: func(v Values, path string, workers int) (runner.Solver, error) {
			cfg := hybridConfig(v, workers)
			cfg.NGrid = v.Int("ngrid")
			cfg.NU = v.Int("nu")
			cfg.NuParticles = true
			cfg.NNuSide = v.Int("nnuside")
			return restoreHybrid(cfg, path)
		},
	}

	return []Scenario{landau, twostream, hybridSc, nbody, shotnoise}
}
