package phase

import (
	"math"
	"testing"
	"testing/quick"
)

func smallGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := New(4, 3, 5, [3]int{8, 6, 10}, [3]float64{100, 100, 100}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, 2, [3]int{8, 8, 8}, [3]float64{1, 1, 1}, 1); err == nil {
		t.Fatal("zero spatial extent accepted")
	}
	if _, err := New(2, 2, 2, [3]int{4, 8, 8}, [3]float64{1, 1, 1}, 1); err == nil {
		t.Fatal("velocity extent < 6 accepted")
	}
	if _, err := New(2, 2, 2, [3]int{8, 8, 8}, [3]float64{0, 1, 1}, 1); err == nil {
		t.Fatal("zero box accepted")
	}
	if _, err := New(2, 2, 2, [3]int{8, 8, 8}, [3]float64{1, 1, 1}, -1); err == nil {
		t.Fatal("negative UMax accepted")
	}
}

func TestLayoutAndSizes(t *testing.T) {
	g := smallGrid(t)
	if g.NCells() != 60 || g.NCube() != 480 {
		t.Fatalf("NCells=%d NCube=%d", g.NCells(), g.NCube())
	}
	if len(g.Data) != 60*480 {
		t.Fatalf("data length %d", len(g.Data))
	}
	// Cube slices tile Data without overlap.
	c0 := g.Cube(0, 0, 0)
	c1 := g.Cube(0, 0, 1)
	c0[0] = 7
	if c1[0] == 7 {
		t.Fatal("cubes alias")
	}
	if &g.Data[480] != &c1[0] {
		t.Fatal("cube 1 misplaced")
	}
}

func TestCoordinates(t *testing.T) {
	g := smallGrid(t)
	if dx := g.DX(0); math.Abs(dx-25) > 1e-14 {
		t.Fatalf("DX(0) = %v, want 25", dx)
	}
	if du := g.DU(0); math.Abs(du-500) > 1e-14 {
		t.Fatalf("DU(0) = %v, want 500", du)
	}
	// Velocity grid is symmetric: U(d, 0) = −UMax + DU/2, and the mean of
	// the first and last centres is 0.
	for d := 0; d < 3; d++ {
		lo, hi := g.U(d, 0), g.U(d, g.NU[d]-1)
		if math.Abs(lo+hi) > 1e-10 {
			t.Fatalf("velocity axis %d not symmetric: %v, %v", d, lo, hi)
		}
	}
	if x := g.X(0, 0); math.Abs(x-12.5) > 1e-14 {
		t.Fatalf("X(0,0) = %v", x)
	}
}

func TestFillAndTotalMass(t *testing.T) {
	g := smallGrid(t)
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 { return 2 })
	// Total = 2 × V_x × V_u.
	vx := 100.0 * 100 * 100
	vu := math.Pow(2*2000, 3)
	want := 2 * vx * vu
	if got := g.TotalMass(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("TotalMass = %v, want %v", got, want)
	}
}

func TestMomentsUniform(t *testing.T) {
	g := smallGrid(t)
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 { return 1 })
	m := g.ComputeMoments()
	du3 := g.DU(0) * g.DU(1) * g.DU(2)
	wantRho := du3 * float64(g.NCube())
	for c := 0; c < g.NCells(); c++ {
		if math.Abs(m.Density[c]-wantRho)/wantRho > 1e-6 {
			t.Fatalf("cell %d density %v, want %v", c, m.Density[c], wantRho)
		}
		for d := 0; d < 3; d++ {
			if math.Abs(m.MeanU[d][c]) > 1e-6*g.UMax {
				t.Fatalf("cell %d mean u[%d] = %v, want 0", c, d, m.MeanU[d][c])
			}
		}
		// Uniform distribution in [−V, V): σ1D = 2V/sqrt(12).
		want := 2 * g.UMax / math.Sqrt(12)
		// Discrete correction: variance of cell centres is
		// (2V)²(1−1/n²)/12 per axis; with n ≥ 6 it is within 3%.
		if math.Abs(m.Sigma[c]-want)/want > 0.03 {
			t.Fatalf("cell %d sigma %v, want ≈ %v", c, m.Sigma[c], want)
		}
	}
}

func TestMomentsShiftedMaxwellian(t *testing.T) {
	g, err := New(2, 2, 2, [3]int{24, 24, 24}, [3]float64{10, 10, 10}, 6)
	if err != nil {
		t.Fatal(err)
	}
	u0 := [3]float64{1.0, -0.5, 0.25}
	sigma := 1.0
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		r2 := (ux-u0[0])*(ux-u0[0]) + (uy-u0[1])*(uy-u0[1]) + (uz-u0[2])*(uz-u0[2])
		return math.Exp(-r2 / (2 * sigma * sigma))
	})
	m := g.ComputeMoments()
	for c := 0; c < g.NCells(); c++ {
		for d := 0; d < 3; d++ {
			if math.Abs(m.MeanU[d][c]-u0[d]) > 0.01 {
				t.Fatalf("mean u[%d] = %v, want %v", d, m.MeanU[d][c], u0[d])
			}
		}
		if math.Abs(m.Sigma[c]-sigma) > 0.02 {
			t.Fatalf("sigma = %v, want %v", m.Sigma[c], sigma)
		}
	}
}

func TestMomentLinearityProperty(t *testing.T) {
	// Density is linear in f: scaling f scales ρ, leaves mean velocity and
	// dispersion unchanged.
	g, err := New(2, 2, 2, [3]int{8, 8, 8}, [3]float64{10, 10, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return 1 + 0.5*math.Sin(ux)*math.Cos(uy+uz)
	})
	m1 := g.ComputeMoments()
	check := func(scale float64) bool {
		g2, _ := New(2, 2, 2, [3]int{8, 8, 8}, [3]float64{10, 10, 10}, 3)
		copy(g2.Data, g.Data)
		g2.Scale(scale)
		m2 := g2.ComputeMoments()
		for c := 0; c < g.NCells(); c++ {
			if math.Abs(m2.Density[c]-scale*m1.Density[c]) > 1e-5*(1+scale) {
				return false
			}
			if math.Abs(m2.Sigma[c]-m1.Sigma[c]) > 1e-4 {
				return false
			}
		}
		return true
	}
	f := func(raw float64) bool {
		s := 0.25 + math.Mod(math.Abs(raw), 4)
		return check(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMinValue(t *testing.T) {
	g := smallGrid(t)
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 { return 1 })
	g.Data[1234] = -0.5
	if got := g.MinValue(); got != -0.5 {
		t.Fatalf("MinValue = %v", got)
	}
}

func TestParallelCellsCoversAll(t *testing.T) {
	g := smallGrid(t)
	seen := make([]int32, g.NCells())
	g.ParallelCells(func(ix, iy, iz int) {
		seen[g.CellIndex(ix, iy, iz)]++
	})
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d visited %d times", c, n)
		}
	}
}

func TestDispersionTensorIsotropicGaussian(t *testing.T) {
	g, err := New(2, 2, 2, [3]int{20, 20, 20}, [3]float64{10, 10, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sigma := 1.2
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux + uy*uy + uz*uz) / (2 * sigma * sigma))
	})
	dt := g.ComputeDispersionTensor()
	for c := 0; c < g.NCells(); c++ {
		for d := 0; d < 3; d++ {
			if math.Abs(math.Sqrt(dt.S[d][c])-sigma) > 0.05 {
				t.Fatalf("diag %d = %v, want σ² of %v", d, dt.S[d][c], sigma)
			}
		}
		for d := 3; d < 6; d++ {
			if math.Abs(dt.S[d][c]) > 1e-6 {
				t.Fatalf("off-diagonal %d = %v, want 0", d, dt.S[d][c])
			}
		}
		if a := dt.Anisotropy(c); a > 1e-6 {
			t.Fatalf("anisotropy %v for isotropic f", a)
		}
	}
}

func TestDispersionTensorCorrelated(t *testing.T) {
	// A sheared Gaussian f ∝ exp(−(ux−uy)²/2 − …) has σ²xy > 0.
	g, err := New(2, 2, 2, [3]int{16, 16, 16}, [3]float64{10, 10, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux+uy*uy-1.2*ux*uy)/2 - uz*uz/2)
	})
	dt := g.ComputeDispersionTensor()
	if dt.S[3][0] <= 0.1 {
		t.Fatalf("σ²xy = %v, want strongly positive", dt.S[3][0])
	}
	if a := dt.Anisotropy(0); a < 0.05 {
		t.Fatalf("anisotropy %v too small for sheared f", a)
	}
	// Trace consistency with the scalar moments.
	m := g.ComputeMoments()
	tr := (dt.S[0][0] + dt.S[1][0] + dt.S[2][0]) / 3
	if math.Abs(math.Sqrt(tr)-m.Sigma[0]) > 1e-6*(1+m.Sigma[0]) {
		t.Fatalf("tensor trace %v vs scalar σ %v", math.Sqrt(tr), m.Sigma[0])
	}
}

// TestParallelCellsWorkerInvariance: moments and fills are identical for
// any pinned worker count (cells are disjoint), so a core budget resizing
// the reductions never changes results.
func TestParallelCellsWorkerInvariance(t *testing.T) {
	build := func(workers int) *Grid {
		g := smallGrid(t)
		g.SetWorkers(workers)
		g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
			return 1 + 0.1*math.Sin(x+ux)*math.Cos(y-uy) + 0.01*z*uz
		})
		return g
	}
	g1 := build(1)
	g3 := build(3)
	for i := range g1.Data {
		if g1.Data[i] != g3.Data[i] {
			t.Fatalf("Data[%d]: 1-worker %v != 3-worker %v", i, g1.Data[i], g3.Data[i])
		}
	}
	m1 := g1.ComputeMoments()
	m3 := g3.ComputeMoments()
	for i := range m1.Density {
		if m1.Density[i] != m3.Density[i] || m1.Sigma[i] != m3.Sigma[i] {
			t.Fatalf("moments differ at cell %d across worker counts", i)
		}
	}
	// Clone carries the pinned count (a budgeted snapshot restores
	// budgeted); a fresh grid stays on the GOMAXPROCS default.
	if c := g1.Clone(); c.workers != 1 {
		t.Fatalf("clone workers %d, want 1", c.workers)
	}
	if g := smallGrid(t); g.workers != 0 {
		t.Fatalf("fresh grid workers %d, want 0 (GOMAXPROCS default)", g.workers)
	}
}
