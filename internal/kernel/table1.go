package kernel

import (
	"fmt"
	"io"
	"time"
)

// Direction labels the six sweep directions of the Vlasov update in the
// paper's order (velocity space first, as in Table 1).
var Directions = []string{"ux", "uy", "uz", "x", "y", "z"}

// Table1Row is one measurement of the Table 1 reproduction.
type Table1Row struct {
	Direction string
	Mode      Mode
	GFlops    float64
	Cells     int
	Elapsed   time.Duration
}

// Table1Config sizes the measurement brick. The paper measures per CMG on
// Nx = 32³, Nu = 64³ split over two nodes; the defaults use a laptop-scale
// brick with the same 6D structure.
type Table1Config struct {
	NX, NY, NZ    int // spatial extents
	NUX, NUY, NUZ int // velocity extents
	Reps          int // timed repetitions per row
}

// DefaultTable1Config returns a configuration sized to run in seconds on a
// laptop while keeping the velocity cube large enough for the stride effects
// to show.
func DefaultTable1Config() Table1Config {
	return Table1Config{NX: 8, NY: 8, NZ: 8, NUX: 32, NUY: 32, NUZ: 32, Reps: 3}
}

// axisOf maps a direction label to the brick axis under the layout
// (x, y, z, ux, uy, uz) with uz fastest, mirroring List 1.
func axisOf(dir string) int {
	switch dir {
	case "x":
		return 0
	case "y":
		return 1
	case "z":
		return 2
	case "ux":
		return 3
	case "uy":
		return 4
	case "uz":
		return 5
	}
	return -1
}

// Measure runs the per-direction, per-mode sweeps of Table 1 and returns
// the measured rows. Modes that do not apply to a direction (LAT off the
// fastest axis) are skipped, as in the paper's table ("–" entries).
func Measure(cfg Table1Config) ([]Table1Row, error) {
	b, err := NewBrick(cfg.NX, cfg.NY, cfg.NZ, cfg.NUX, cfg.NUY, cfg.NUZ)
	if err != nil {
		return nil, err
	}
	for i := range b.Data {
		b.Data[i] = 1 + 0.5*float32(i%17)/17
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	cells := len(b.Data)
	var rows []Table1Row
	for _, dir := range Directions {
		axis := axisOf(dir)
		modes := []Mode{Strided, Contig}
		if dir == "uz" {
			modes = append(modes, LAT)
		}
		for _, m := range modes {
			// Warm-up sweep.
			if err := b.Sweep(axis, m, 0.3); err != nil {
				return nil, err
			}
			start := time.Now()
			for r := 0; r < cfg.Reps; r++ {
				if err := b.Sweep(axis, m, 0.3); err != nil {
					return nil, err
				}
			}
			el := time.Since(start)
			fl := float64(cells) * FlopsPerCell * float64(cfg.Reps)
			rows = append(rows, Table1Row{
				Direction: dir,
				Mode:      m,
				GFlops:    fl / el.Seconds() / 1e9,
				Cells:     cells,
				Elapsed:   el,
			})
		}
	}
	return rows, nil
}

// WriteTable1 renders rows in the paper's Table 1 layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: advection sweep throughput per direction (Gflop/s)\n")
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", "Direction", "w/o SIMD", "w/ SIMD", "w/ LAT")
	byDir := map[string]map[Mode]float64{}
	for _, r := range rows {
		if byDir[r.Direction] == nil {
			byDir[r.Direction] = map[Mode]float64{}
		}
		byDir[r.Direction][r.Mode] = r.GFlops
	}
	for _, d := range Directions {
		m := byDir[d]
		if m == nil {
			continue
		}
		cell := func(md Mode) string {
			v, ok := m[md]
			if !ok {
				return "–"
			}
			return fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", d, cell(Strided), cell(Contig), cell(LAT))
	}
}
