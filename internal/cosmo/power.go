package cosmo

import "math"

// PowerSpectrum is a σ8-normalised linear matter power spectrum P(k) at z=0
// built from the BBKS (Bardeen–Bond–Kaiser–Szalay) transfer function with the
// Sugiyama shape-parameter correction, plus a massive-neutrino free-streaming
// suppression of the total-matter power. It provides separate spectra for the
// CDM+baryon component and the neutrino component, which the initial-condition
// generator uses to perturb the two species consistently.
type PowerSpectrum struct {
	par   Params
	amp   float64 // primordial amplitude fixed by σ8
	gamma float64 // shape parameter Γ (BBKS path)
	kind  TransferKind
}

// NewPowerSpectrum constructs a σ8-normalised spectrum for the parameter set.
func NewPowerSpectrum(p Params) *PowerSpectrum {
	ps := &PowerSpectrum{par: p}
	// Sugiyama (1995) shape parameter.
	ps.gamma = p.OmegaM * p.H * math.Exp(-p.OmegaB*(1+math.Sqrt(2*p.H)/p.OmegaM))
	ps.amp = 1
	s2 := ps.sigmaR(8.0)
	ps.amp = p.Sigma8 * p.Sigma8 / (s2 * s2)
	return ps
}

// transferBBKS is the BBKS CDM transfer function for q = k/Γ (k in h/Mpc).
func transferBBKS(q float64) float64 {
	if q <= 0 {
		return 1
	}
	x := 2.34 * q
	t := math.Log(1+x) / x
	poly := 1 + 3.89*q + math.Pow(16.1*q, 2) + math.Pow(5.46*q, 3) + math.Pow(6.71*q, 4)
	return t * math.Pow(poly, -0.25)
}

// Total returns the z=0 linear total-matter power spectrum P(k) in
// (h⁻¹Mpc)³ for k in h/Mpc, including the neutrino suppression factor
// ΔP/P ≈ −8fν on scales below the free-streaming length (the collisionless
// damping signature the paper measures).
func (ps *PowerSpectrum) Total(k float64) float64 {
	if k <= 0 {
		return 0
	}
	t := ps.transfer(k)
	p := ps.amp * math.Pow(k, ps.par.NS) * t * t
	return p * ps.nuSuppression(k)
}

// nuSuppression interpolates between 1 on large scales and (1−8fν)… clamped
// at a floor, on small scales, across the z=0 free-streaming wavenumber.
func (ps *PowerSpectrum) nuSuppression(k float64) float64 {
	fnu := ps.par.FNu()
	if fnu <= 0 {
		return 1
	}
	sup := 1 - 8*fnu
	if sup < 0.05 {
		sup = 0.05
	}
	kfs := ps.par.FreeStreamingWavenumber(1)
	x := k / kfs
	w := x * x / (1 + x*x) // →0 for k≪kfs, →1 for k≫kfs
	return 1 + (sup-1)*w
}

// CB returns the z=0 CDM+baryon power spectrum. Relative to the total it is
// slightly enhanced because the neutrino component is smooth below the
// free-streaming scale: δ_m = (1−fν)δ_cb + fν δν.
func (ps *PowerSpectrum) CB(k float64) float64 {
	fnu := ps.par.FNu()
	r := ps.nuDensityRatio(k) // δν/δ_cb
	den := (1 - fnu) + fnu*r
	return ps.Total(k) / (den * den)
}

// Nu returns the z=0 linear neutrino power spectrum Pν(k) = r²(k)·P_cb(k).
func (ps *PowerSpectrum) Nu(k float64) float64 {
	r := ps.nuDensityRatio(k)
	return r * r * ps.CB(k)
}

// nuDensityRatio models the ratio δν/δ_cb: unity above the free-streaming
// length and suppressed as (k/kfs)⁻² below it (the standard free-streaming
// solution of the linearised Vlasov equation).
func (ps *PowerSpectrum) nuDensityRatio(k float64) float64 {
	if ps.par.FNu() <= 0 {
		return 1
	}
	kfs := ps.par.FreeStreamingWavenumber(1)
	x := k / kfs
	return 1 / (1 + x*x)
}

// At returns the total-matter spectrum scaled to scale factor a with the
// linear growth factor: P(k,a) = D²(a)·P(k,1).
func (ps *PowerSpectrum) At(k, a float64) float64 {
	d := ps.par.GrowthFactor(a)
	return d * d * ps.Total(k)
}

// SigmaR returns the RMS linear density fluctuation in spheres of radius R
// (h⁻¹Mpc) at z=0.
func (ps *PowerSpectrum) SigmaR(r float64) float64 {
	return ps.sigmaR(r)
}

func (ps *PowerSpectrum) sigmaR(r float64) float64 {
	// σ²(R) = 1/(2π²) ∫ k² P(k) W²(kR) dk with top-hat W.
	f := func(lnk float64) float64 {
		k := math.Exp(lnk)
		w := topHat(k * r)
		return k * k * k * ps.Total(k) * w * w
	}
	integral := simpson(f, math.Log(1e-5), math.Log(1e3), 4096)
	return math.Sqrt(integral / (2 * math.Pi * math.Pi))
}

func topHat(x float64) float64 {
	if x < 1e-4 {
		return 1 - x*x/10
	}
	return 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
}
