// Package catalog is the scenario registry behind the service layer: it
// maps a serialisable JobSpec — a scenario name plus typed parameters and
// run options, the JSON a remote client POSTs — to a sched.Job ready for a
// Stream or a batch. Job factories stop being Go-only closures: every
// scenario in the repository (the plasma validation problems, the hybrid
// Vlasov/N-body runs and their control modes) is registered here with
// parameter validation and defaulting, so a daemon can accept work it has
// never been linked against.
//
// A Scenario declares its parameters (name, type, default, range or enum);
// Job validates a spec against the declaration, fills defaults, and builds
// the solver factory and — when the scenario supports checkpoint restore —
// the resume hook. Unknown scenarios, unknown parameters, type mismatches
// and out-of-range values are all descriptive errors at submission time,
// never panics on a worker goroutine.
package catalog

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"vlasov6d/internal/runner"
	"vlasov6d/internal/sched"
)

// Kind is a parameter's wire type.
type Kind int

const (
	// Float accepts any JSON number.
	Float Kind = iota
	// Int accepts a JSON number with no fractional part.
	Int
	// String accepts a JSON string (optionally restricted by Enum).
	String
	// Bool accepts a JSON boolean.
	Bool
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Param declares one scenario parameter: its wire type, default and valid
// range. The zero Min/Max leave a numeric parameter unbounded.
type Param struct {
	// Name is the JSON key.
	Name string `json:"name"`
	// Kind is the wire type.
	Kind Kind `json:"-"`
	// Type is Kind's name, for the JSON scenario listing.
	Type string `json:"type"`
	// Default fills a missing parameter (float64 for Float, int for Int,
	// string for String, bool for Bool).
	Default any `json:"default"`
	// Min/Max bound a numeric parameter inclusively when HasRange is set.
	Min      float64 `json:"min,omitempty"`
	Max      float64 `json:"max,omitempty"`
	HasRange bool    `json:"-"`
	// Enum restricts a String parameter to the listed values.
	Enum []string `json:"enum,omitempty"`
	// Help is a one-line description for the scenario listing.
	Help string `json:"help,omitempty"`
}

// Values holds a spec's validated, defaulted parameters keyed by name.
type Values map[string]any

// Float returns a Float parameter (the zero value if absent — validation
// guarantees presence for declared parameters).
func (v Values) Float(name string) float64 { f, _ := v[name].(float64); return f }

// Int returns an Int parameter.
func (v Values) Int(name string) int { i, _ := v[name].(int); return i }

// Str returns a String parameter.
func (v Values) Str(name string) string { s, _ := v[name].(string); return s }

// Bool returns a Bool parameter.
func (v Values) Bool(name string) bool { b, _ := v[name].(bool); return b }

// Scenario is one registered workload shape.
type Scenario struct {
	// Name keys the scenario in JobSpec.Scenario.
	Name string `json:"name"`
	// Description is a one-line summary for the listing endpoint.
	Description string `json:"description"`
	// Params declares the accepted parameters.
	Params []Param `json:"params"`
	// DefaultUntil is the clock target used when the spec leaves Until
	// zero (scale factor for cosmological scenarios, ω_p·t for plasma).
	DefaultUntil float64 `json:"default_until"`
	// Build constructs the solver from validated values. workers is the
	// job's core share at construction time (0 = unbudgeted): factories
	// size IC generation with it instead of bursting to GOMAXPROCS.
	Build func(v Values, workers int) (runner.Solver, error) `json:"-"`
	// Restore rebuilds the solver from a checkpoint file (nil when the
	// scenario cannot resume). The values are the same validated set Build
	// saw, so the hook can reject a snapshot that does not match the spec.
	Restore func(v Values, path string, workers int) (runner.Solver, error) `json:"-"`
	// Check validates cross-parameter constraints a per-parameter range
	// cannot express (optional). It runs at spec validation time, so a
	// spec it rejects fails the submission, never a worker goroutine.
	Check func(v Values) error `json:"-"`
}

// Catalog is a set of registered scenarios. Construct with New (empty) or
// Default (every scenario in the repository). Safe for concurrent use.
type Catalog struct {
	mu        sync.RWMutex
	scenarios map[string]*Scenario
	order     []string
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{scenarios: make(map[string]*Scenario)}
}

// Register adds a scenario. Registering a duplicate or invalid declaration
// is an error — the catalog is the service's contract surface, typos in it
// must fail loudly at startup.
func (c *Catalog) Register(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("catalog: scenario with empty name")
	}
	if sc.Build == nil {
		return fmt.Errorf("catalog: scenario %q has no Build", sc.Name)
	}
	if sc.DefaultUntil <= 0 {
		return fmt.Errorf("catalog: scenario %q: DefaultUntil %g must be positive", sc.Name, sc.DefaultUntil)
	}
	seen := make(map[string]bool, len(sc.Params))
	for i := range sc.Params {
		p := &sc.Params[i]
		if p.Name == "" {
			return fmt.Errorf("catalog: scenario %q: parameter with empty name", sc.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("catalog: scenario %q: duplicate parameter %q", sc.Name, p.Name)
		}
		seen[p.Name] = true
		p.Type = p.Kind.String()
		if _, err := coerce(*p, p.Default); err != nil {
			return fmt.Errorf("catalog: scenario %q: default for %q: %w", sc.Name, p.Name, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.scenarios[sc.Name]; dup {
		return fmt.Errorf("catalog: scenario %q already registered", sc.Name)
	}
	c.scenarios[sc.Name] = &sc
	c.order = append(c.order, sc.Name)
	return nil
}

// Get returns a scenario by name.
func (c *Catalog) Get(name string) (*Scenario, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc, ok := c.scenarios[name]
	return sc, ok
}

// Scenarios lists the registered scenarios in registration order — the
// introspection surface a service exposes so clients can discover what
// they may submit.
func (c *Catalog) Scenarios() []Scenario {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Scenario, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.scenarios[name])
	}
	return out
}

// JobSpec is the serialisable job language: what a client POSTs to submit
// work. Everything a sched.Job closure used to capture in Go is explicit
// JSON here.
type JobSpec struct {
	// Scenario names the registered scenario to instantiate.
	Scenario string `json:"scenario"`
	// Name identifies the job (and keys its checkpoint directory, so it
	// must be unique among live jobs when the service checkpoints).
	// Empty derives "<scenario>-<non-default params>".
	Name string `json:"name,omitempty"`
	// Params are the scenario parameters; missing ones take the declared
	// defaults, unknown ones are errors.
	Params map[string]any `json:"params,omitempty"`
	// Until overrides the scenario's default clock target.
	Until float64 `json:"until,omitempty"`
	// Priority orders dispatch: higher first (sched.Job.Priority).
	Priority int `json:"priority,omitempty"`
	// Retries overrides the scheduler's retry policy for this job
	// (null = scheduler default, 0 = never retry).
	Retries *int `json:"retries,omitempty"`
	// MinWorkers/MaxWorkers bound the job's share of the service's core
	// budget (sched.Job bounds; 0 = unbounded).
	MinWorkers int `json:"min_workers,omitempty"`
	MaxWorkers int `json:"max_workers,omitempty"`
	// MaxSteps caps the run's step count (0 = unlimited).
	MaxSteps int `json:"max_steps,omitempty"`
	// FixedDT disables adaptive stepping and uses this dt.
	FixedDT float64 `json:"fixed_dt,omitempty"`
}

// Canonical serialises the spec deterministically: fixed field order (the
// struct declaration), lexicographically sorted Params keys, no
// insignificant whitespace. Two equal specs always produce identical
// bytes, and Canonical(decode(Canonical(s))) == Canonical(s), so a journal
// that stores canonical bytes round-trips byte-stably across a
// write/replay/compact cycle and replayed bytes can be compared or hashed
// directly.
func (s JobSpec) Canonical() ([]byte, error) {
	// encoding/json already gives both guarantees: struct fields marshal in
	// declaration order and map keys sort lexicographically. The method
	// exists so callers depend on the contract, not the accident.
	return json.Marshal(s)
}

// Validate resolves a spec against the catalog: the scenario must exist,
// every parameter must be declared, typed and in range, and missing
// parameters take their defaults. It returns the resolved values and the
// scenario.
func (c *Catalog) Validate(spec JobSpec) (Values, *Scenario, error) {
	sc, ok := c.Get(spec.Scenario)
	if !ok {
		return nil, nil, fmt.Errorf("catalog: unknown scenario %q (have %s)",
			spec.Scenario, strings.Join(c.names(), ", "))
	}
	vals := make(Values, len(sc.Params))
	declared := make(map[string]Param, len(sc.Params))
	for _, p := range sc.Params {
		declared[p.Name] = p
		v, err := coerce(p, p.Default)
		if err != nil { // unreachable after Register's check; keep the guard
			return nil, nil, fmt.Errorf("catalog: %s: default %q: %w", sc.Name, p.Name, err)
		}
		vals[p.Name] = v
	}
	for name, raw := range spec.Params {
		p, ok := declared[name]
		if !ok {
			return nil, nil, fmt.Errorf("catalog: scenario %q has no parameter %q (have %s)",
				sc.Name, name, strings.Join(paramNames(sc.Params), ", "))
		}
		v, err := coerce(p, raw)
		if err != nil {
			return nil, nil, fmt.Errorf("catalog: %s: parameter %q: %w", sc.Name, name, err)
		}
		vals[name] = v
	}
	if spec.Until < 0 {
		return nil, nil, fmt.Errorf("catalog: %s: until %g must be non-negative", sc.Name, spec.Until)
	}
	if spec.MaxSteps < 0 {
		return nil, nil, fmt.Errorf("catalog: %s: max_steps %d must be non-negative", sc.Name, spec.MaxSteps)
	}
	if spec.FixedDT < 0 {
		return nil, nil, fmt.Errorf("catalog: %s: fixed_dt %g must be non-negative", sc.Name, spec.FixedDT)
	}
	// The scheduler re-checks these at submission, but a malformed spec is
	// a bad request, not a submission conflict — reject it here.
	if spec.MinWorkers < 0 || spec.MaxWorkers < 0 {
		return nil, nil, fmt.Errorf("catalog: %s: negative worker bound min=%d max=%d",
			sc.Name, spec.MinWorkers, spec.MaxWorkers)
	}
	if spec.MaxWorkers > 0 && spec.MaxWorkers < spec.MinWorkers {
		return nil, nil, fmt.Errorf("catalog: %s: max_workers %d below min_workers %d",
			sc.Name, spec.MaxWorkers, spec.MinWorkers)
	}
	if spec.Retries != nil && *spec.Retries < 0 {
		return nil, nil, fmt.Errorf("catalog: %s: retries %d must be non-negative", sc.Name, *spec.Retries)
	}
	if sc.Check != nil {
		if err := sc.Check(vals); err != nil {
			return nil, nil, fmt.Errorf("catalog: %s: %w", sc.Name, err)
		}
	}
	return vals, sc, nil
}

// Job resolves a spec into a runnable sched.Job: validated parameters,
// defaulted name and clock target, the budget-aware factory, and the
// restore hook when the scenario supports resume. The scheduler's own
// validation (worker bounds, retry override) still applies at submission.
func (c *Catalog) Job(spec JobSpec) (sched.Job, error) {
	vals, sc, err := c.Validate(spec)
	if err != nil {
		return sched.Job{}, err
	}
	name := spec.Name
	if name == "" {
		name = deriveName(sc, spec.Params, vals)
	}
	until := spec.Until
	if until == 0 {
		until = sc.DefaultUntil
	}
	var opts []runner.Option
	if spec.MaxSteps > 0 {
		opts = append(opts, runner.WithMaxSteps(spec.MaxSteps))
	}
	if spec.FixedDT > 0 {
		opts = append(opts, runner.WithFixedDT(spec.FixedDT))
	}
	job := sched.Job{
		Name:       name,
		Until:      until,
		Priority:   spec.Priority,
		MinWorkers: spec.MinWorkers,
		MaxWorkers: spec.MaxWorkers,
		Retries:    spec.Retries,
		Opts:       opts,
		NewBudgeted: func(lease runner.WorkerLease) (runner.Solver, error) {
			return sc.Build(vals, leaseWorkers(lease))
		},
	}
	if sc.Restore != nil {
		job.Restore = func(path string) (runner.Solver, error) {
			// Restore runs before the factory on the same worker, under the
			// same lease regime; resume is cheap (no IC pass) so the exact
			// share matters less — unbudgeted restores pass 0.
			return sc.Restore(vals, path, 0)
		}
	}
	return job, nil
}

// leaseWorkers reads the construction-time share of a possibly-nil lease.
func leaseWorkers(lease runner.WorkerLease) int {
	if lease == nil {
		return 0
	}
	return lease.Workers()
}

// names lists the registered scenario names in registration order.
func (c *Catalog) names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

func paramNames(ps []Param) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// deriveName builds the default job name "<scenario>[-k=v...]" from the
// parameters the spec set explicitly, sorted for determinism. The sched
// layer sanitises it further for checkpoint paths.
func deriveName(sc *Scenario, explicit map[string]any, vals Values) string {
	if len(explicit) == 0 {
		return sc.Name
	}
	keys := make([]string, 0, len(explicit))
	for k := range explicit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(sc.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "-%s=%v", k, vals[k])
	}
	return b.String()
}

// coerce validates one raw parameter value against its declaration and
// returns the canonical Go value (float64, int, string or bool). JSON
// numbers arrive as float64; an Int parameter additionally requires an
// integral value.
func coerce(p Param, raw any) (any, error) {
	switch p.Kind {
	case Float:
		f, ok := toFloat(raw)
		if !ok {
			return nil, fmt.Errorf("want float, got %T", raw)
		}
		if p.HasRange && (f < p.Min || f > p.Max) {
			return nil, fmt.Errorf("%g outside [%g, %g]", f, p.Min, p.Max)
		}
		return f, nil
	case Int:
		f, ok := toFloat(raw)
		if !ok {
			return nil, fmt.Errorf("want int, got %T", raw)
		}
		if f != math.Trunc(f) {
			return nil, fmt.Errorf("want int, got fractional %g", f)
		}
		if p.HasRange && (f < p.Min || f > p.Max) {
			return nil, fmt.Errorf("%g outside [%g, %g]", f, p.Min, p.Max)
		}
		return int(f), nil
	case String:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", raw)
		}
		if len(p.Enum) > 0 {
			for _, e := range p.Enum {
				if s == e {
					return s, nil
				}
			}
			return nil, fmt.Errorf("%q not one of %s", s, strings.Join(p.Enum, ", "))
		}
		return s, nil
	case Bool:
		b, ok := raw.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", raw)
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown parameter kind %v", p.Kind)
}

// toFloat widens the numeric types a decoded spec (or a Go caller passing
// literals) can carry.
func toFloat(raw any) (float64, bool) {
	switch n := raw.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}
