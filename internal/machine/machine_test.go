package machine

import (
	"math"
	"strings"
	"testing"
)

func model(t *testing.T) *Model {
	t.Helper()
	m, err := New(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTable2Consistency(t *testing.T) {
	if len(Table2) != 18 {
		t.Fatalf("Table 2 has %d runs, want 18", len(Table2))
	}
	for _, r := range Table2 {
		// Process grid must divide the spatial grid.
		for d := 0; d < 3; d++ {
			if r.NxSide%r.Proc[d] != 0 {
				t.Errorf("%s: proc grid %v does not divide Nx %d", r.ID, r.Proc, r.NxSide)
			}
		}
		// Node count × procs/node = process count.
		if r.Nodes*r.ProcsPerNode != r.NProc() {
			t.Errorf("%s: %d nodes × %d ≠ %d procs", r.ID, r.Nodes, r.ProcsPerNode, r.NProc())
		}
		// N_CDM = 9³·N_x except U1024 (paper: H-group particle count).
		if r.ID != "U1024" && r.NCDMSide != 9*r.NxSide {
			t.Errorf("%s: NCDM %d ≠ 9·%d", r.ID, r.NCDMSide, r.NxSide)
		}
	}
	// The headline number: U1024's phase-space grid is 400 trillion.
	u, err := FindRun("U1024")
	if err != nil {
		t.Fatal(err)
	}
	if got := u.PhaseCells(); math.Abs(got-4.0075e14)/4.0075e14 > 0.01 {
		t.Fatalf("U1024 grid count %.4g, want ≈ 4.01e14 (400 trillion)", got)
	}
	// H1024 and U1024 use 147,456 nodes (nearly full Fugaku).
	h, _ := FindRun("H1024")
	if h.Nodes != 147456 || u.Nodes != 147456 {
		t.Fatal("full-system node counts wrong")
	}
}

func TestFindRunAndGroup(t *testing.T) {
	if _, err := FindRun("Z9"); err == nil {
		t.Fatal("unknown run accepted")
	}
	if g := Group("L"); len(g) != 5 {
		t.Fatalf("L group has %d runs, want 5", len(g))
	}
	if w := WeakSequence(); len(w) != 4 || w[0].ID != "S2" || w[3].ID != "H1024" {
		t.Fatalf("weak sequence wrong: %v", w)
	}
}

func TestModelValidation(t *testing.T) {
	p := Defaults()
	p.FFTEffRate = 0
	if _, err := New(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestBreakdownPositive(t *testing.T) {
	m := model(t)
	for _, r := range Table2 {
		b := m.Step(r)
		if b.Vlasov <= 0 || b.Tree <= 0 || b.PM <= 0 || b.Total <= 0 {
			t.Fatalf("%s: non-positive breakdown %+v", r.ID, b)
		}
		if b.Total < b.Vlasov || b.Total < b.PM {
			t.Fatalf("%s: total inconsistent", r.ID)
		}
	}
	if _, err := m.Step(Table2[0]).PartTime("nope"); err == nil {
		t.Fatal("unknown part accepted")
	}
}

func TestVlasovDominates(t *testing.T) {
	// §7.1: the Vlasov part is ≈70% of the step — the model must reproduce
	// that ordering on the weak-scaling chain.
	m := model(t)
	for _, r := range WeakSequence() {
		b := m.Step(r)
		fv := (b.Vlasov + b.CommVlasov) / b.Total
		if fv < 0.4 || fv > 0.95 {
			t.Fatalf("%s: Vlasov fraction %v outside plausible range", r.ID, fv)
		}
		if b.Vlasov < b.Tree {
			t.Fatalf("%s: tree part exceeds Vlasov part", r.ID)
		}
	}
}

func TestWeakScalingShape(t *testing.T) {
	m := model(t)
	effs, err := m.WeakScaling(WeakSequence())
	if err != nil {
		t.Fatal(err)
	}
	// Vlasov stays excellent out to full system.
	v := effs["vlasov"]
	if v[2] < 0.85 {
		t.Fatalf("Vlasov weak efficiency at H1024 = %v, want > 0.85", v[2])
	}
	// PM degrades monotonically and ends far below the Vlasov part — the
	// 2D-FFT bottleneck of §7.1.
	pm := effs["pm"]
	if !(pm[0] > pm[1] && pm[1] > pm[2]) {
		t.Fatalf("PM weak efficiency not monotonically degrading: %v", pm)
	}
	if pm[2] > 0.5 {
		t.Fatalf("PM weak efficiency at scale %v, want strong degradation (paper: 17%%)", pm[2])
	}
	// Totals stay above 70% (paper: 82.3% at full system).
	if effs["total"][2] < 0.7 {
		t.Fatalf("total weak efficiency %v too low", effs["total"][2])
	}
	if _, err := m.WeakScaling(Table2[:1]); err == nil {
		t.Fatal("short sequence accepted")
	}
}

func TestStrongScalingShape(t *testing.T) {
	m := model(t)
	for _, g := range []string{"S", "M", "L", "H"} {
		eff, err := m.StrongScaling(Group(g))
		if err != nil {
			t.Fatal(err)
		}
		if eff["vlasov"] < 0.8 {
			t.Fatalf("group %s: Vlasov strong efficiency %v < 0.8", g, eff["vlasov"])
		}
		if eff["total"] < 0.6 || eff["total"] > 1.05 {
			t.Fatalf("group %s: total strong efficiency %v implausible", g, eff["total"])
		}
		// PM is always the worst part.
		if eff["pm"] > eff["vlasov"] {
			t.Fatalf("group %s: PM scales better than Vlasov — split model broken", g)
		}
	}
	if _, err := m.StrongScaling(Table2[:1]); err == nil {
		t.Fatal("short group accepted")
	}
}

func TestScalingAgreesWithPaperWithinBand(t *testing.T) {
	// Shape-level agreement: each modelled Table 3 efficiency within ±20
	// percentage points of the published value (absolute seconds are not
	// comparable; ratios should be).
	m := model(t)
	effs, err := m.WeakScaling(WeakSequence())
	if err != nil {
		t.Fatal(err)
	}
	for part, pub := range PaperTable3 {
		for i := 0; i < 3; i++ {
			got := 100 * effs[part][i]
			if math.Abs(got-pub[i]) > 25 {
				t.Errorf("Table3 %s[%d]: model %.1f%%, paper %.1f%%", part, i, got, pub[i])
			}
		}
	}
}

func TestFig7SeriesAndWriters(t *testing.T) {
	m := model(t)
	rows := m.Fig7Series()
	if len(rows) != len(Table2) {
		t.Fatalf("Fig7 rows %d", len(rows))
	}
	var sb strings.Builder
	if err := m.WriteTable3(&sb); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteTable4(&sb); err != nil {
		t.Fatal(err)
	}
	m.WriteFig7(&sb)
	m.WriteTTS(&sb, DefaultTTS())
	out := sb.String()
	for _, want := range []string{"Table 3", "Table 4", "Fig 7", "H1024", "U1024", "S2–H1024"} {
		if !strings.Contains(out, want) {
			t.Fatalf("writer output missing %q", want)
		}
	}
}

func TestTimeToSolutionOrderOfMagnitude(t *testing.T) {
	// The headline claim: Vlasov TTS beats TianNu by ~an order of
	// magnitude. The model must land within a factor ~3 of the paper's
	// end-to-end hours and preserve H1024 faster than U1024.
	m := model(t)
	h, _ := FindRun("H1024")
	u, _ := FindRun("U1024")
	rh := m.TimeToSolution(h, DefaultTTS())
	ru := m.TimeToSolution(u, DefaultTTS())
	if rh.TotalH >= ru.TotalH {
		t.Fatalf("H1024 (%v h) should be faster than U1024 (%v h)", rh.TotalH, ru.TotalH)
	}
	paperH := (PaperTTS["H1024"].ExecSec + PaperTTS["H1024"].IOSec) / 3600
	if rh.TotalH > 3*paperH || rh.TotalH < paperH/3 {
		t.Fatalf("H1024 modelled %v h vs paper %v h: outside 3× band", rh.TotalH, paperH)
	}
	if rh.SpeedupVsTianNu < 5 {
		t.Fatalf("speedup vs TianNu %v, want ≫ 1", rh.SpeedupVsTianNu)
	}
}

func TestEffectiveResolutionEq9(t *testing.T) {
	// Paper: S/N = 100 → ΔL ≈ L/640; S/N = 50 → ΔL ≈ L/1018.
	if side := EquivalentGridSide(13824, 100); math.Abs(side-640)/640 > 0.02 {
		t.Fatalf("S/N=100 equivalent side %v, want ≈ 640", side)
	}
	if side := EquivalentGridSide(13824, 50); math.Abs(side-1018)/1018 > 0.02 {
		t.Fatalf("S/N=50 equivalent side %v, want ≈ 1018", side)
	}
	if dl := EffectiveResolution(1200, 13824, 100); math.Abs(dl-1200.0/640) > 0.05 {
		t.Fatalf("ΔL = %v", dl)
	}
}

func TestTofuShape(t *testing.T) {
	tofu := FugakuTofu()
	// 24·23·24·2·3·2 = 158,976 — the full Fugaku node count of §6.1.
	if tofu.Nodes() != 158976 {
		t.Fatalf("Tofu nodes = %d, want 158976", tofu.Nodes())
	}
	// The paper's H1024/U1024 runs (147,456 nodes) fit inside it.
	h, _ := FindRun("H1024")
	if h.Nodes > tofu.Nodes() {
		t.Fatal("run does not fit the machine")
	}
}

func TestTofuCoordsRoundTrip(t *testing.T) {
	tofu := FugakuTofu()
	for _, rank := range []int{0, 1, 12345, 158975} {
		c, err := tofu.Coords(rank)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the rank from coordinates.
		r := 0
		for d := 0; d < 6; d++ {
			r = r*tofu.Shape[d] + c[d]
		}
		if r != rank {
			t.Fatalf("rank %d -> %v -> %d", rank, c, r)
		}
	}
	if _, err := tofu.Coords(-1); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := tofu.Coords(158976); err == nil {
		t.Fatal("overflow rank accepted")
	}
}

func TestTofuHopDistance(t *testing.T) {
	tofu := FugakuTofu()
	a := [6]int{0, 0, 0, 0, 0, 0}
	if d := tofu.HopDistance(a, a); d != 0 {
		t.Fatalf("self distance %d", d)
	}
	b := [6]int{1, 0, 0, 0, 0, 0}
	if d := tofu.HopDistance(a, b); d != 1 {
		t.Fatalf("adjacent distance %d", d)
	}
	if !tofu.NeighbourSingleHop(a, b) {
		t.Fatal("adjacent nodes should be single-hop")
	}
	// Torus wrap on x: (0,…) to (23,…) is one hop, not 23.
	c := [6]int{23, 0, 0, 0, 0, 0}
	if d := tofu.HopDistance(a, c); d != 1 {
		t.Fatalf("wrap distance %d, want 1", d)
	}
	// Mesh axis y does NOT wrap: (0,…) to (0,22,…) is 22 hops.
	e := [6]int{0, 22, 0, 0, 0, 0}
	if d := tofu.HopDistance(a, e); d != 22 {
		t.Fatalf("mesh distance %d, want 22", d)
	}
}

func TestTofuBisection(t *testing.T) {
	tofu := FugakuTofu()
	links := tofu.BisectionLinks()
	// Longest axis 24 (torus): bisection = 2 · nodes/24.
	want := 2 * 158976 / 24
	if links != want {
		t.Fatalf("bisection links %d, want %d", links, want)
	}
}
