package store

import (
	"encoding/json"
	"testing"
	"time"

	"vlasov6d/internal/obs"
)

// TestEventSeqReserveRoundTrip pins the durable event-numbering record: a
// reservation journaled for a pending job survives close/reopen, only
// ever ratchets upward, and an unknown id's record is ignored rather than
// resurrecting a finished job.
func TestEventSeqReserveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)

	spec := json.RawMessage(`{"scenario":"landau"}`)
	id := s.NextID()
	if err := s.Submitted(id, "alice", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.EventSeqReserve(id, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.EventSeqReserve(id, 8192); err != nil {
		t.Fatal(err)
	}
	// A record for an id the journal does not know is dropped at replay.
	if err := s.EventSeqReserve(99, 1<<20); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	pending := s2.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending = %d jobs", len(pending))
	}
	if got := pending[0].EventSeqReserved; got != 8192 {
		t.Fatalf("EventSeqReserved = %d, want 8192", got)
	}
}

// TestEventSeqReserveSurvivesCompaction: boot compaction rewrites the
// journal to the pending set — the reservation must be re-emitted, or a
// compacted restart would silently reset every recovered job's numbering.
func TestEventSeqReserveSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)

	spec := json.RawMessage(`{"scenario":"landau"}`)
	live := s.NextID()
	if err := s.Submitted(live, "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.EventSeqReserve(live, 4096); err != nil {
		t.Fatal(err)
	}
	// A terminal job's records (reservation included) are compacted away.
	done := s.NextID()
	if err := s.Submitted(done, "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.EventSeqReserve(done, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Terminal(done, "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != live {
		t.Fatalf("pending after compaction: %+v", pending)
	}
	if got := pending[0].EventSeqReserved; got != 4096 {
		t.Fatalf("EventSeqReserved after compaction = %d, want 4096", got)
	}
}

// TestIndexTraceRoundTrip: a terminal entry's lifecycle trace — spans,
// attrs, the drop counter — persists through the index and a reopen.
func TestIndexTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(7)
	e.Trace = []obs.Span{
		{Name: "admission", StartUnixNano: 100, EndUnixNano: 200},
		{Name: "run", StartUnixNano: 300, EndUnixNano: 900,
			Attrs: map[string]string{"attempt": "1"}},
	}
	e.TraceDropped = 3
	if err := ix.Put(e); err != nil {
		t.Fatal(err)
	}
	ix.Close()

	ix, err = OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	got, ok := ix.Get(7)
	if !ok {
		t.Fatal("entry lost")
	}
	if len(got.Trace) != 2 || got.TraceDropped != 3 {
		t.Fatalf("trace did not round-trip: %d spans, %d dropped", len(got.Trace), got.TraceDropped)
	}
	sp := got.Trace[1]
	if sp.Name != "run" || sp.StartUnixNano != 300 || sp.EndUnixNano != 900 ||
		sp.Attrs["attempt"] != "1" {
		t.Fatalf("span did not round-trip: %+v", sp)
	}
	if sp.DurationSeconds() != 600e-9 {
		t.Fatalf("duration = %g", sp.DurationSeconds())
	}
}
