package serve

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestRingSequenceAndEviction pins the ring's replay contract: dense
// monotonic sequences from 1, oldest-first eviction, and a since() that
// reports exactly how many events fell off the tail.
func TestRingSequenceAndEviction(t *testing.T) {
	r := newEventRing(4)
	if got, missed := r.since(0); got != nil || missed != 0 {
		t.Fatalf("empty ring since(0) = %v, %d", got, missed)
	}
	for i := 1; i <= 6; i++ {
		if seq := r.append("diag", []byte(fmt.Sprintf("%d", i))); seq != int64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if r.head() != 6 || r.firstRetained() != 3 {
		t.Fatalf("head %d firstRetained %d, want 6 and 3", r.head(), r.firstRetained())
	}

	// Resume from 0: events 1-2 are gone and must be counted, 3-6 replay.
	evs, missed := r.since(0)
	if missed != 2 {
		t.Fatalf("missed %d, want 2", missed)
	}
	for i, ev := range evs {
		if ev.seq != int64(3+i) || string(ev.data) != fmt.Sprintf("%d", 3+i) {
			t.Fatalf("replayed event %d = seq %d data %q", i, ev.seq, ev.data)
		}
	}

	// Resume from inside the retained window: exact continuation, no gap.
	evs, missed = r.since(4)
	if missed != 0 || len(evs) != 2 || evs[0].seq != 5 || evs[1].seq != 6 {
		t.Fatalf("since(4) = %v events, missed %d", len(evs), missed)
	}

	// Fully caught up: nothing to replay.
	if evs, missed = r.since(6); len(evs) != 0 || missed != 0 {
		t.Fatalf("since(head) = %v events, missed %d", len(evs), missed)
	}
}

func TestRingTrimTo(t *testing.T) {
	r := newEventRing(8)
	for i := 1; i <= 8; i++ {
		r.append("diag", nil)
	}
	r.trimTo(2)
	if r.firstRetained() != 7 || r.head() != 8 {
		t.Fatalf("after trimTo(2): firstRetained %d head %d", r.firstRetained(), r.head())
	}
	// Sequences keep advancing past a trim.
	if seq := r.append("done", nil); seq != 9 {
		t.Fatalf("post-trim append assigned %d", seq)
	}
	if _, missed := r.since(0); missed != 6 {
		t.Fatalf("post-trim since(0) missed %d, want 6", missed)
	}
}

// TestMarshalEventFallback pins satellite: an unencodable payload must
// degrade to a readable "error" event, never kill the stream.
func TestMarshalEventFallback(t *testing.T) {
	typ, data := marshalEvent("diag", map[string]any{"bad": make(chan int)})
	if typ != "error" {
		t.Fatalf("fallback type %q", typ)
	}
	var body map[string]string
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("fallback payload not JSON: %v", err)
	}
	if body["error"] == "" {
		t.Fatalf("fallback payload missing error: %v", body)
	}
	if body["schema"] != eventSchema {
		t.Fatalf("fallback payload schema = %q, want %q", body["schema"], eventSchema)
	}

	// Every map payload is stamped with the schema version — the event
	// stream contract clients pin on.
	typ, data = marshalEvent("diag", map[string]any{"step": 1})
	if typ != "diag" || string(data) != `{"schema":"v1","step":1}` {
		t.Fatalf("clean marshal = %q %q", typ, data)
	}
}
