package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// selfClassified is an error type that classifies itself transient without
// the MarkRetryable wrapper — the solver-package path.
type selfClassified struct{}

func (selfClassified) Error() string   { return "transient by construction" }
func (selfClassified) Retryable() bool { return true }

func TestRetryableClassification(t *testing.T) {
	base := errors.New("disk full")
	if IsRetryable(base) {
		t.Fatal("unmarked error classified retryable")
	}
	if IsRetryable(nil) {
		t.Fatal("nil classified retryable")
	}
	marked := MarkRetryable(base)
	if !IsRetryable(marked) {
		t.Fatal("marked error not classified retryable")
	}
	if !errors.Is(marked, base) {
		t.Fatal("marking broke the errors.Is chain")
	}
	// The mark survives further wrapping — the scheduler sees errors after
	// the runner and the job layer have both wrapped them.
	wrapped := fmt.Errorf("runner: step 7: %w", marked)
	if !IsRetryable(wrapped) {
		t.Fatal("wrap hid the retryable mark")
	}
	if !IsRetryable(selfClassified{}) {
		t.Fatal("self-classified error not recognised")
	}
	if MarkRetryable(nil) != nil {
		t.Fatal("MarkRetryable(nil) not nil")
	}
}

func TestCancellationNeverRetryable(t *testing.T) {
	// A cancelled job was stopped on purpose: even a careless wrapper
	// cannot make the scheduler re-run it.
	for _, err := range []error{context.Canceled, context.DeadlineExceeded} {
		if IsRetryable(MarkRetryable(fmt.Errorf("aborted: %w", err))) {
			t.Fatalf("%v classified retryable despite being cancellation", err)
		}
	}
}
