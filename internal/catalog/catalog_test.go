package catalog

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"vlasov6d/internal/runner"
	"vlasov6d/internal/sched"
)

func TestDefaultCatalogLists(t *testing.T) {
	c := Default()
	scs := c.Scenarios()
	want := []string{"landau", "twostream", "hybrid", "nbody", "shotnoise"}
	if len(scs) != len(want) {
		t.Fatalf("%d scenarios, want %d", len(scs), len(want))
	}
	for i, name := range want {
		if scs[i].Name != name {
			t.Errorf("scenario %d is %q, want %q", i, scs[i].Name, name)
		}
		if scs[i].Description == "" || scs[i].DefaultUntil <= 0 {
			t.Errorf("scenario %q missing description or default target", scs[i].Name)
		}
	}
	// The listing must be JSON-serialisable (the introspection endpoint).
	if _, err := json.Marshal(scs); err != nil {
		t.Fatalf("scenario listing does not marshal: %v", err)
	}
}

func TestValidateDefaultsAndTypes(t *testing.T) {
	c := Default()
	vals, sc, err := c.Validate(JobSpec{Scenario: "landau"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "landau" {
		t.Fatalf("resolved scenario %q", sc.Name)
	}
	if vals.Int("nx") != 32 || vals.Int("nv") != 64 || vals.Str("scheme") != "slmpp5" {
		t.Fatalf("defaults not filled: %+v", vals)
	}
	// JSON numbers arrive as float64; an integral one coerces to int.
	vals, _, err = c.Validate(JobSpec{Scenario: "landau",
		Params: map[string]any{"nx": float64(64), "k": float64(0.25)}})
	if err != nil {
		t.Fatal(err)
	}
	if vals.Int("nx") != 64 || vals.Float("k") != 0.25 {
		t.Fatalf("explicit params not applied: %+v", vals)
	}
}

func TestValidateRejects(t *testing.T) {
	c := Default()
	minusOne := -1
	cases := []struct {
		name string
		spec JobSpec
		frag string // expected error fragment
	}{
		{"unknown scenario", JobSpec{Scenario: "warpdrive"}, "unknown scenario"},
		{"unknown param", JobSpec{Scenario: "landau", Params: map[string]any{"mass": 1.0}}, "no parameter"},
		{"wrong type", JobSpec{Scenario: "landau", Params: map[string]any{"nx": "big"}}, "want int"},
		{"fractional int", JobSpec{Scenario: "landau", Params: map[string]any{"nx": 32.5}}, "fractional"},
		{"out of range", JobSpec{Scenario: "landau", Params: map[string]any{"nx": 4.0}}, "outside"},
		{"bad enum", JobSpec{Scenario: "landau", Params: map[string]any{"scheme": "psychic"}}, "not one of"},
		{"negative until", JobSpec{Scenario: "landau", Until: -1}, "until"},
		{"negative steps", JobSpec{Scenario: "landau", MaxSteps: -1}, "max_steps"},
		{"negative min workers", JobSpec{Scenario: "landau", MinWorkers: -1}, "worker bound"},
		{"max below min workers", JobSpec{Scenario: "landau", MinWorkers: 3, MaxWorkers: 2}, "max_workers"},
		{"negative retries", JobSpec{Scenario: "landau", Retries: &minusOne}, "retries"},
		{"nnuside of one", JobSpec{Scenario: "shotnoise", Params: map[string]any{"nnuside": 1.0}}, "nnuside"},
	}
	for _, cse := range cases {
		_, _, err := c.Validate(cse.spec)
		if err == nil {
			t.Errorf("%s: accepted", cse.name)
			continue
		}
		if !strings.Contains(err.Error(), cse.frag) {
			t.Errorf("%s: error %q does not mention %q", cse.name, err, cse.frag)
		}
	}
}

func TestJobNameDerivation(t *testing.T) {
	c := Default()
	job, err := c.Job(JobSpec{Scenario: "landau"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "landau" {
		t.Fatalf("bare spec name %q", job.Name)
	}
	job, err = c.Job(JobSpec{Scenario: "landau",
		Params: map[string]any{"nx": 64.0, "scheme": "mp5"}})
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "landau-nx=64-scheme=mp5" {
		t.Fatalf("derived name %q", job.Name)
	}
	job, err = c.Job(JobSpec{Scenario: "landau", Name: "mine"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "mine" {
		t.Fatalf("explicit name %q", job.Name)
	}
}

func TestJobCarriesSpecOptions(t *testing.T) {
	c := Default()
	two := 2
	job, err := c.Job(JobSpec{Scenario: "landau", Priority: 5, Retries: &two,
		MinWorkers: 1, MaxWorkers: 3, Until: 7})
	if err != nil {
		t.Fatal(err)
	}
	if job.Priority != 5 || job.MinWorkers != 1 || job.MaxWorkers != 3 || job.Until != 7 {
		t.Fatalf("spec options lost: %+v", job)
	}
	if job.Retries == nil || *job.Retries != 2 {
		t.Fatalf("retry override lost: %v", job.Retries)
	}
	if job.Restore == nil {
		t.Fatal("landau job has no restore hook")
	}
}

// TestEveryScenarioRunsThroughScheduler drives a tiny configuration of
// every registered scenario through a real batch — the catalog's whole
// point is that a JSON spec is runnable work.
func TestEveryScenarioRunsThroughScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("builds real solvers incl. small hybrid configs")
	}
	c := Default()
	specs := []JobSpec{
		{Scenario: "landau", Params: map[string]any{"nx": 16.0, "nv": 16.0}, Until: 0.5},
		{Scenario: "twostream", Params: map[string]any{"nx": 16.0, "nv": 16.0}, Until: 0.5},
		{Scenario: "hybrid", Until: 0.1, MaxSteps: 2},
		{Scenario: "nbody", Until: 0.1, MaxSteps: 2},
		{Scenario: "shotnoise", Until: 0.1, MaxSteps: 2},
	}
	var jobs []sched.Job
	for _, spec := range specs {
		job, err := c.Job(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Scenario, err)
		}
		jobs = append(jobs, job)
	}
	results, err := sched.RunBatch(context.Background(), jobs, sched.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status != sched.Done {
			t.Errorf("job %q: %v (%v)", r.Name, r.Status, r.Err)
		}
	}
}

// TestBudgetedConstruction verifies the catalog factory hands the lease's
// share to the solver at build time.
func TestBudgetedConstruction(t *testing.T) {
	c := Default()
	job, err := c.Job(JobSpec{Scenario: "landau", Until: 0.5,
		Params: map[string]any{"nx": 16.0, "nv": 16.0}})
	if err != nil {
		t.Fatal(err)
	}
	// A fixed-share fake lease: the factory should construct with it.
	s, err := job.NewBudgeted(fixedLease(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(runner.WorkerBudgeted); !ok {
		t.Fatal("plasma solver lost WorkerBudgeted")
	}
	// And a nil lease must still build (unbudgeted stream).
	if _, err := job.NewBudgeted(nil); err != nil {
		t.Fatal(err)
	}
}

type fixedLease int

func (f fixedLease) Workers() int { return int(f) }

func TestCanonicalByteStable(t *testing.T) {
	spec := JobSpec{
		Scenario: "landau",
		Name:     "probe",
		Params:   map[string]any{"nv": 24, "nx": 16, "amplitude": 0.01},
		Until:    5,
		Priority: 3,
	}
	a, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// Same spec, params inserted in a different order: identical bytes.
	spec2 := spec
	spec2.Params = map[string]any{"amplitude": 0.01, "nx": 16, "nv": 24}
	b, err := spec2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("insertion order leaked into canonical form:\n%s\n%s", a, b)
	}
	// Round trip through decode: still identical — what a journal replay
	// re-canonicalising a stored spec relies on.
	var back JobSpec
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	c, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatalf("canonical form not a fixed point:\n%s\n%s", a, c)
	}
}
