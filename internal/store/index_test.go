package store

import (
	"os"
	"path/filepath"
	"testing"
)

func testEntry(id int) IndexEntry {
	return IndexEntry{
		ID:                id,
		Tenant:            "alice",
		Name:              "landau-x",
		Scenario:          "landau",
		Status:            "done",
		SubmittedUnixNano: 1000,
		FinishedUnixNano:  2000,
		Report: &ReportSummary{
			Steps: 40, Clock: 0.4, WallSeconds: 1.5, Reason: "until",
			Checkpoints: 2, CheckpointBytes: 4096,
		},
		Artifacts: []Artifact{
			{Name: "ckpt_000000.100000.v6d", Bytes: 2048, Clock: 0.1, Format: "solver"},
			{Name: "ckpt_000000.200000.v6d", Bytes: 2048, Clock: 0.2, Format: "solver"},
		},
	}
}

// TestIndexRoundTrip: entries survive Put → Close → OpenIndex, and a
// repeated id keeps the newest record after compaction.
func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Put(testEntry(1)); err != nil {
		t.Fatal(err)
	}
	stale := testEntry(2)
	stale.Status = "failed"
	if err := ix.Put(stale); err != nil {
		t.Fatal(err)
	}
	fresh := testEntry(2) // re-run across lives: same id, newer outcome
	if err := ix.Put(fresh); err != nil {
		t.Fatal(err)
	}
	ix.Close()

	ix, err = OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Len() != 2 {
		t.Fatalf("reopened index holds %d entries, want 2", ix.Len())
	}
	e, ok := ix.Get(2)
	if !ok || e.Status != "done" {
		t.Fatalf("duplicate id resolved to %+v (ok=%v), want the newest", e, ok)
	}
	if len(e.Artifacts) != 2 || e.Artifacts[1].Clock != 0.2 {
		t.Fatalf("artifacts did not round-trip: %+v", e.Artifacts)
	}
	if e.Report == nil || e.Report.Steps != 40 {
		t.Fatalf("report did not round-trip: %+v", e.Report)
	}
	if _, ok := ix.Get(99); ok {
		t.Fatal("unknown id resolved")
	}
}

// TestIndexTornTail: a partially written final frame (the crash case) is
// truncated on reopen; whole entries before it survive.
func TestIndexTornTail(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Put(testEntry(1)); err != nil {
		t.Fatal(err)
	}
	ix.Close()

	path := filepath.Join(dir, indexName)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(blob, blob[:len(blob)/3]...) // half-written next frame
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ix, err = OpenIndex(dir)
	if err != nil {
		t.Fatalf("torn tail wedged reopen: %v", err)
	}
	defer ix.Close()
	if ix.Len() != 1 {
		t.Fatalf("after torn tail: %d entries, want 1", ix.Len())
	}
	if _, ok := ix.Get(1); !ok {
		t.Fatal("whole entry lost to torn-tail truncation")
	}
}

// TestIndexGetIsolation: Get must deep-copy, so a caller mutating the
// returned slices cannot corrupt the index.
func TestIndexGetIsolation(t *testing.T) {
	ix, err := OpenIndex(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.Put(testEntry(1)); err != nil {
		t.Fatal(err)
	}
	a, _ := ix.Get(1)
	a.Artifacts[0].Name = "tampered"
	a.Report.Steps = -1
	b, _ := ix.Get(1)
	if b.Artifacts[0].Name == "tampered" || b.Report.Steps == -1 {
		t.Fatal("Get returned aliased state")
	}
}
