// Command vlasov6d is the main simulation driver: a hybrid Vlasov/N-body
// cosmological run of massive neutrinos and cold dark matter, the Go-scale
// counterpart of the paper's production code.
//
// Example:
//
//	vlasov6d -box 200 -ngrid 12 -nu 10 -npart 12 -mnu 0.4 -zinit 10 -zend 2 \
//	         -snapshot out.v6d -spectrum pk.csv
//
// The run prints a per-step log line (a, z, dt, conservation checks) and the
// final wall-clock decomposition by part (the paper's Fig. 7 categories).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vlasov6d/internal/analysis"
	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/hybrid"
	"vlasov6d/internal/snapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vlasov6d: ")
	var (
		box      = flag.Float64("box", 200, "comoving box size (h⁻¹Mpc)")
		ngrid    = flag.Int("ngrid", 12, "Vlasov spatial cells per side")
		nuCells  = flag.Int("nu", 10, "velocity cells per side")
		npart    = flag.Int("npart", 12, "CDM particles per side")
		pmf      = flag.Int("pmfactor", 2, "PM mesh refinement over the Vlasov grid")
		mnu      = flag.Float64("mnu", 0.4, "ΣMν (eV)")
		zinit    = flag.Float64("zinit", 10, "starting redshift")
		zend     = flag.Float64("zend", 0, "final redshift")
		scheme   = flag.String("scheme", "slmpp5", "advection scheme: slmpp5|mp5|upwind1|laxwendroff2")
		seed     = flag.Int64("seed", 20211114, "IC random seed")
		baseline = flag.Bool("nu-particles", false, "use the TianNu-style ν-particle baseline instead of the Vlasov grid")
		snap     = flag.String("snapshot", "", "write a final snapshot to this path")
		spectrum = flag.String("spectrum", "", "write the final total-matter P(k) CSV to this path")
		logEvery = flag.Int("log-every", 10, "progress log cadence in steps")
	)
	flag.Parse()

	cfg := hybrid.Config{
		Par:         cosmo.Planck2015(*mnu),
		Box:         *box,
		NGrid:       *ngrid,
		NU:          *nuCells,
		NPartSide:   *npart,
		PMFactor:    *pmf,
		Scheme:      *scheme,
		Seed:        *seed,
		NuParticles: *baseline,
	}
	aInit := 1 / (1 + *zinit)
	aEnd := 1 / (1 + *zend)
	sim, err := hybrid.New(cfg, aInit)
	if err != nil {
		log.Fatal(err)
	}
	nu0, cdm0 := sim.TotalMass()
	log.Printf("box %.0f h⁻¹Mpc, %d³ Vlasov cells × %d³ velocity cells, %d³ particles, ΣMν = %.2f eV",
		*box, *ngrid, *nuCells, *npart, *mnu)
	log.Printf("fν = %.4f, starting at z = %.2f", cfg.Par.FNu(), *zinit)

	err = sim.Evolve(aEnd, 1000000, func(step int, s *hybrid.Simulation) error {
		if *logEvery > 0 && (step+1)%*logEvery == 0 {
			nu, _ := s.TotalMass()
			loss := 0.0
			if s.VSol != nil {
				loss = s.VSol.BoundaryLoss
			}
			log.Printf("step %4d: a = %.4f (z = %5.2f), ν-mass drift = %+.2e, boundary loss = %.2e",
				step+1, s.A, s.Redshift(), (nu+loss-nu0)/nu0, loss/nu0)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	nu1, cdm1 := sim.TotalMass()
	fmt.Printf("\nrun complete: %d steps to z = %.2f\n", sim.Tim.Steps, sim.Redshift())
	fmt.Printf("  CDM mass        : %.6e (drift %+.1e)\n", cdm1, (cdm1-cdm0)/cdm0)
	if nu0 > 0 {
		fmt.Printf("  ν mass          : %.6e (drift %+.1e)\n", nu1, (nu1-nu0)/nu0)
	}
	fmt.Printf("  wall time       : %.1f s over %d steps\n", sim.Tim.Total.Seconds(), sim.Tim.Steps)
	fmt.Printf("  part breakdown  : Vlasov %.1fs | tree %.1fs | PM %.1fs | moments %.1fs\n",
		sim.Tim.Vlasov.Seconds(), sim.Tim.Tree.Seconds(), sim.Tim.PM.Seconds(),
		sim.Tim.Moments.Seconds())

	if *snap != "" {
		f, err := os.Create(*snap)
		if err != nil {
			log.Fatal(err)
		}
		n, err := snapio.Write(f, &snapio.Snapshot{A: sim.A, Time: sim.Time, Part: sim.Part, Grid: sim.Grid})
		if err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("snapshot: %s (%d bytes)", *snap, n)
	}
	if *spectrum != "" {
		mesh := make([]float64, sim.PM.Size())
		if err := sim.Part.CICDeposit(mesh, sim.PM.N); err != nil {
			log.Fatal(err)
		}
		if nuRho := sim.NeutrinoDensityPM(); nuRho != nil {
			for i, v := range nuRho {
				mesh[i] += v
			}
		}
		ks, pk, _, err := analysis.PowerSpectrum(mesh, sim.PM.N[0], *box, 16)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*spectrum)
		if err != nil {
			log.Fatal(err)
		}
		if err := analysis.WriteCSV(f, []string{"k_h_Mpc", "Pk_Mpc3_h3"}, ks, pk); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("power spectrum: %s (%d bins)", *spectrum, len(ks))
	}
}
