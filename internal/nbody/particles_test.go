package nbody

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomParticles(t *testing.T, n int, seed int64) *Particles {
	t.Helper()
	p, err := NewParticles(n, 1.5, [3]float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			p.Pos[d][i] = rng.Float64() * p.Box[d]
			p.Vel[d][i] = rng.NormFloat64() * 100
		}
	}
	return p
}

func TestNewParticlesValidation(t *testing.T) {
	if _, err := NewParticles(0, 1, [3]float64{1, 1, 1}); err == nil {
		t.Fatal("zero particles accepted")
	}
	if _, err := NewParticles(10, -1, [3]float64{1, 1, 1}); err == nil {
		t.Fatal("negative mass accepted")
	}
	if _, err := NewParticles(10, 1, [3]float64{1, 0, 1}); err == nil {
		t.Fatal("zero box accepted")
	}
}

func TestDriftWrapsPeriodically(t *testing.T) {
	p, _ := NewParticles(1, 1, [3]float64{10, 10, 10})
	p.Pos[0][0] = 9.5
	p.Vel[0][0] = 1 // u = a²ẋ with a = 1 → ẋ = 1
	p.Drift(1.0, 1.0)
	if math.Abs(p.Pos[0][0]-0.5) > 1e-12 {
		t.Fatalf("pos = %v, want 0.5", p.Pos[0][0])
	}
	// Negative direction.
	p.Pos[1][0] = 0.2
	p.Vel[1][0] = -1
	p.Drift(1.0, 1.0)
	if math.Abs(p.Pos[1][0]-9.2) > 1e-12 {
		t.Fatalf("pos = %v, want 9.2", p.Pos[1][0])
	}
}

func TestDriftScaleFactor(t *testing.T) {
	// dx = u·dt/a²: halving a quadruples the comoving displacement.
	p, _ := NewParticles(1, 1, [3]float64{100, 100, 100})
	p.Vel[0][0] = 1
	p.Drift(1, 1)
	x1 := p.Pos[0][0]
	p.Pos[0][0] = 0
	p.Drift(1, 0.5)
	if math.Abs(p.Pos[0][0]-4*x1) > 1e-12 {
		t.Fatalf("a-scaling wrong: %v vs %v", p.Pos[0][0], 4*x1)
	}
}

func TestKick(t *testing.T) {
	p := randomParticles(t, 10, 1)
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, p.N)
		for i := range acc[d] {
			acc[d][i] = float64(d + 1)
		}
	}
	v0 := p.Vel[2][3]
	if err := p.Kick(0.5, acc); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Vel[2][3]-(v0+1.5)) > 1e-12 {
		t.Fatalf("kick wrong: %v", p.Vel[2][3])
	}
	var bad [3][]float64
	bad[0] = make([]float64, 3)
	bad[1] = make([]float64, p.N)
	bad[2] = make([]float64, p.N)
	if err := p.Kick(0.5, bad); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCICDepositConservesMass(t *testing.T) {
	p := randomParticles(t, 500, 2)
	n := [3]int{8, 8, 8}
	mesh := make([]float64, 512)
	if err := p.CICDeposit(mesh, n); err != nil {
		t.Fatal(err)
	}
	cellVol := (100.0 / 8) * (100.0 / 8) * (100.0 / 8)
	total := 0.0
	for _, v := range mesh {
		total += v * cellVol
	}
	want := float64(p.N) * p.Mass
	if math.Abs(total-want)/want > 1e-12 {
		t.Fatalf("deposited mass %v, want %v", total, want)
	}
}

func TestCICDepositUniformLattice(t *testing.T) {
	// One particle per cell centre → exactly uniform density.
	n := [3]int{4, 4, 4}
	p, _ := NewParticles(64, 2, [3]float64{8, 8, 8})
	i := 0
	for ix := 0; ix < 4; ix++ {
		for iy := 0; iy < 4; iy++ {
			for iz := 0; iz < 4; iz++ {
				p.Pos[0][i] = (float64(ix) + 0.5) * 2
				p.Pos[1][i] = (float64(iy) + 0.5) * 2
				p.Pos[2][i] = (float64(iz) + 0.5) * 2
				i++
			}
		}
	}
	mesh := make([]float64, 64)
	if err := p.CICDeposit(mesh, n); err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 8.0 // mass per cell volume
	for c, v := range mesh {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("cell %d density %v, want %v", c, v, want)
		}
	}
}

func TestCICInterpLinearFieldExact(t *testing.T) {
	// CIC interpolation reproduces an affine field exactly away from the
	// periodic seam (cell-centred weights are linear).
	n := [3]int{16, 16, 16}
	box := [3]float64{16, 16, 16}
	p, _ := NewParticles(50, 1, box)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < p.N; i++ {
		// Keep away from the wrap seam where the affine field is
		// discontinuous.
		p.Pos[0][i] = 2 + rng.Float64()*12
		p.Pos[1][i] = 2 + rng.Float64()*12
		p.Pos[2][i] = 2 + rng.Float64()*12
	}
	field := make([]float64, 16*16*16)
	idx := 0
	for ix := 0; ix < 16; ix++ {
		for iy := 0; iy < 16; iy++ {
			for iz := 0; iz < 16; iz++ {
				x := (float64(ix) + 0.5)
				y := (float64(iy) + 0.5)
				z := (float64(iz) + 0.5)
				field[idx] = 1 + 2*x - 3*y + 0.5*z
				idx++
			}
		}
	}
	out := make([]float64, p.N)
	if err := p.CICInterp(field, n, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.N; i++ {
		want := 1 + 2*p.Pos[0][i] - 3*p.Pos[1][i] + 0.5*p.Pos[2][i]
		if math.Abs(out[i]-want) > 1e-10 {
			t.Fatalf("particle %d: %v, want %v", i, out[i], want)
		}
	}
}

func TestCICDepositInterpAdjointProperty(t *testing.T) {
	// ⟨deposit(p), field⟩ = Σ_particles interp(field): CIC deposit and
	// interpolation are adjoint, the condition for momentum conservation.
	p := randomParticles(t, 40, 4)
	n := [3]int{8, 8, 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		field := make([]float64, 512)
		for i := range field {
			field[i] = rng.NormFloat64()
		}
		mesh := make([]float64, 512)
		if err := p.CICDeposit(mesh, n); err != nil {
			return false
		}
		cellVol := math.Pow(100.0/8, 3)
		lhs := 0.0
		for i := range mesh {
			lhs += mesh[i] * cellVol * field[i]
		}
		out := make([]float64, p.N)
		if err := p.CICInterp(field, n, out); err != nil {
			return false
		}
		rhs := 0.0
		for _, v := range out {
			rhs += v * p.Mass
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumImage(t *testing.T) {
	p, _ := NewParticles(1, 1, [3]float64{10, 10, 10})
	if d := p.MinimumImage(0, 1, 9); math.Abs(d+2) > 1e-12 {
		t.Fatalf("min image = %v, want -2", d)
	}
	if d := p.MinimumImage(0, 9, 1); math.Abs(d-2) > 1e-12 {
		t.Fatalf("min image = %v, want 2", d)
	}
	if d := p.MinimumImage(0, 2, 5); math.Abs(d-3) > 1e-12 {
		t.Fatalf("min image = %v, want 3", d)
	}
}

func TestEnergyAndMomentum(t *testing.T) {
	p, _ := NewParticles(2, 3, [3]float64{10, 10, 10})
	p.Vel[0][0] = 2
	p.Vel[0][1] = -2
	mom := p.TotalMomentum()
	if math.Abs(mom[0]) > 1e-12 {
		t.Fatalf("momentum %v", mom)
	}
	if ke := p.KineticEnergy(); math.Abs(ke-12) > 1e-12 {
		t.Fatalf("KE = %v, want 12", ke)
	}
}
