// Command tts reproduces the §7.2 time-to-solution experiment in two parts:
//
//  1. a LIVE laptop-scale end-to-end hybrid run (z=10 → z=0 on a scaled-down
//     grid) timed including snapshot I/O, run twice — once with the Vlasov
//     neutrinos and once with the TianNu-style neutrino particles at 8× the
//     CDM count — so the wall-clock ratio of the two methods is measured for
//     real, and
//  2. the machine-model extrapolation of the H1024/U1024 full-Fugaku runs
//     against the published TianNu 52 h, including the eq. (9) effective-
//     resolution equivalence.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/hybrid"
	"vlasov6d/internal/machine"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/snapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tts: ")
	var (
		ngrid = flag.Int("ngrid", 10, "Vlasov spatial cells per side")
		nu    = flag.Int("nu", 8, "velocity cells per side")
		npart = flag.Int("npart", 10, "CDM particles per side")
		aEnd  = flag.Float64("aend", 1.0, "final scale factor")
		seed  = flag.Int64("seed", 1, "IC seed")
		skip  = flag.Bool("model-only", false, "skip the live runs")
	)
	flag.Parse()

	if !*skip {
		liveComparison(*ngrid, *nu, *npart, *aEnd, *seed)
	}

	m, err := machine.New(machine.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	m.WriteTTS(os.Stdout, machine.DefaultTTS())
}

func liveComparison(ngrid, nu, npart int, aEnd float64, seed int64) {
	base := hybrid.Config{
		Par:       cosmo.Planck2015(0.4),
		Box:       200,
		NGrid:     ngrid,
		NU:        nu,
		NPartSide: npart,
		PMFactor:  2,
		Seed:      seed,
	}
	runOne := func(label string, cfg hybrid.Config) (wall, io float64, steps int) {
		t0 := time.Now()
		sim, err := hybrid.New(cfg, 0.0909)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		if _, err := runner.Run(context.Background(), sim, aEnd, runner.WithMaxSteps(1000000)); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		// Snapshot I/O, as in the paper's end-to-end accounting.
		tIO := time.Now()
		f, err := os.CreateTemp("", "vlasov6d-snap-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.Remove(f.Name())
		snap := &snapio.Snapshot{A: sim.A, Time: sim.Time, Part: sim.Part, Grid: sim.Grid}
		nBytes, err := snapio.Write(f, snap)
		if err != nil {
			log.Fatal(err)
		}
		f.Close()
		io = time.Since(tIO).Seconds()
		wall = time.Since(t0).Seconds()
		log.Printf("%s: %d steps, %.1f s wall (%.2f s I/O, %s snapshot)",
			label, sim.Tim.Steps, wall, io, humanBytes(nBytes))
		return wall, io, sim.Tim.Steps
	}

	fmt.Println("LIVE end-to-end comparison (scaled-down, z=10 → z=0):")
	wV, _, sV := runOne("Vlasov hybrid", base)
	cfgP := base
	cfgP.NuParticles = true
	cfgP.NNuSide = 2 * npart // the paper's 8× neutrino particle count
	wP, _, sP := runOne("ν-particle baseline", cfgP)
	fmt.Printf("  Vlasov hybrid      : %7.1f s (%d steps)\n", wV, sV)
	fmt.Printf("  ν-particle baseline: %7.1f s (%d steps)\n", wP, sP)
	fmt.Printf("  NOTE the paper's claim is comparable wall time at far better\n")
	fmt.Printf("  velocity-space fidelity (Figs. 5–6), not raw speed at toy sizes;\n")
	fmt.Printf("  the full-scale TTS advantage comes from the resolution equivalence\n")
	fmt.Printf("  of eq. (9) — see the model table below.\n")
}

func humanBytes(n int64) string {
	switch {
	case n > 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n > 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n > 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
