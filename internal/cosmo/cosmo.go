// Package cosmo implements the homogeneous background cosmology used by the
// hybrid Vlasov/N-body simulation: the Friedmann expansion history a(t), the
// linear growth factor, the relic-neutrino momentum distribution, and the
// linear matter power spectrum used to generate initial conditions.
//
// Conventions follow the paper (eqs. 1–2): comoving positions x, canonical
// velocities u = a²ẋ in km/s, and the comoving peculiar potential φ with
// ∇²φ = 4πG a² (ρ_proper − ρ̄_proper) = (4πG/a)(ρ_c − ρ̄_c), where ρ_c is the
// comoving mass density tracked by the code.
package cosmo

import (
	"fmt"
	"math"

	"vlasov6d/internal/units"
)

// Params holds the cosmological parameters of a run. The default values
// correspond to the Planck-2015-like model used in the paper with a total
// neutrino mass of 0.4 eV.
type Params struct {
	H        float64 // dimensionless Hubble parameter h
	OmegaM   float64 // total matter density today (CDM + baryons + ν)
	OmegaL   float64 // cosmological constant density today
	OmegaB   float64 // baryon density today (folded into the N-body component)
	SumMNuEV float64 // ΣMν over the three mass eigenstates, in eV
	NS       float64 // primordial spectral index
	Sigma8   float64 // power spectrum normalisation
}

// Planck2015 returns the paper's fiducial parameter set with the given total
// neutrino mass in eV (the paper uses 0.4 eV for scaling runs, and 0.2 eV for
// the comparison in Fig. 4).
func Planck2015(sumMNuEV float64) Params {
	return Params{
		H:        0.6774,
		OmegaM:   0.3089,
		OmegaL:   0.6911,
		OmegaB:   0.0486,
		SumMNuEV: sumMNuEV,
		NS:       0.9667,
		Sigma8:   0.8159,
	}
}

// Validate checks the parameter set for physical consistency.
func (p Params) Validate() error {
	if p.H <= 0 || p.H > 2 {
		return fmt.Errorf("cosmo: h = %v out of range", p.H)
	}
	if p.OmegaM <= 0 || p.OmegaM > 2 {
		return fmt.Errorf("cosmo: OmegaM = %v out of range", p.OmegaM)
	}
	if p.OmegaL < 0 {
		return fmt.Errorf("cosmo: OmegaL = %v negative", p.OmegaL)
	}
	if p.SumMNuEV < 0 {
		return fmt.Errorf("cosmo: SumMNu = %v negative", p.SumMNuEV)
	}
	if p.OmegaNu() >= p.OmegaM {
		return fmt.Errorf("cosmo: OmegaNu = %v exceeds OmegaM = %v", p.OmegaNu(), p.OmegaM)
	}
	return nil
}

// OmegaNu returns the present-day massive-neutrino density parameter.
func (p Params) OmegaNu() float64 {
	return units.OmegaNuFromMass(p.SumMNuEV, p.H)
}

// OmegaCB returns the CDM+baryon density parameter (the N-body component).
func (p Params) OmegaCB() float64 {
	return p.OmegaM - p.OmegaNu()
}

// FNu returns the neutrino mass fraction fν = Ων/Ωm.
func (p Params) FNu() float64 {
	return p.OmegaNu() / p.OmegaM
}

// E returns the dimensionless Hubble rate E(a) = H(a)/H0 for a flat
// matter+Λ model (massive neutrinos counted as matter at the redshifts the
// simulation covers, z ≤ 10, where the paper starts).
func (p Params) E(a float64) float64 {
	return math.Sqrt(p.OmegaM/(a*a*a) + p.OmegaL + (1-p.OmegaM-p.OmegaL)/(a*a))
}

// Hubble returns H(a) in internal units (km/s per h⁻¹Mpc).
func (p Params) Hubble(a float64) float64 {
	return units.HubbleInternal * p.E(a)
}

// MeanMatterDensity returns the comoving mean matter density ρ̄_c (all
// matter) in internal units; it is constant in comoving coordinates.
func (p Params) MeanMatterDensity() float64 {
	return p.OmegaM * units.RhoCrit0()
}

// MeanNuDensity returns the comoving mean neutrino mass density.
func (p Params) MeanNuDensity() float64 {
	return p.OmegaNu() * units.RhoCrit0()
}

// MeanCBDensity returns the comoving mean CDM+baryon density.
func (p Params) MeanCBDensity() float64 {
	return p.OmegaCB() * units.RhoCrit0()
}

// PoissonCoeff returns the factor multiplying the comoving overdensity
// (ρ_c − ρ̄_c) on the right-hand side of the Poisson equation at scale
// factor a: ∇²φ = (4πG/a)(ρ_c − ρ̄_c). This is the paper's eq. (2) with the
// proper density rewritten in terms of the comoving density.
func (p Params) PoissonCoeff(a float64) float64 {
	return 4 * math.Pi * units.G / a
}

// CosmicTime returns the cosmic time t(a) in internal units, from a
// high-accuracy Simpson integration of dt = da/(a H(a)).
func (p Params) CosmicTime(a float64) float64 {
	const n = 4096
	if a <= 0 {
		return 0
	}
	// Integrate from a small but nonzero floor; the integrand a⁻¹H⁻¹ ∝ a^{1/2}
	// in matter domination, so the omitted piece is negligible for a0 ≪ a.
	const a0 = 1e-8
	if a <= a0 {
		return 0
	}
	f := func(x float64) float64 { return 1 / (x * p.Hubble(x)) }
	return simpson(f, a0, a, n)
}

// ScaleFactorAt inverts CosmicTime by bisection: returns a such that
// CosmicTime(a) = t. Valid for t in (0, CosmicTime(aMax)].
func (p Params) ScaleFactorAt(t float64) float64 {
	lo, hi := 1e-8, 16.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if p.CosmicTime(mid) < t {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*hi {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// GrowthFactor returns the linear growth factor D(a), normalised so that
// D(1) = 1, using D(a) ∝ H(a) ∫₀^a da' / (a' H(a'))³.
func (p Params) GrowthFactor(a float64) float64 {
	return p.growthRaw(a) / p.growthRaw(1)
}

func (p Params) growthRaw(a float64) float64 {
	const n = 2048
	const a0 = 1e-6
	if a <= a0 {
		return a // matter-dominated limit D ∝ a
	}
	f := func(x float64) float64 {
		xh := x * p.E(x)
		return 1 / (xh * xh * xh)
	}
	return p.E(a) * simpson(f, a0, a, n)
}

// GrowthRate returns f = dlnD/dlna at scale factor a (numerically).
func (p Params) GrowthRate(a float64) float64 {
	const eps = 1e-4
	d1 := math.Log(p.growthRaw(a * (1 + eps)))
	d0 := math.Log(p.growthRaw(a * (1 - eps)))
	return (d1 - d0) / (2 * eps)
}

// NuThermalVelocity returns the characteristic thermal velocity in km/s of a
// single neutrino eigenstate of mass ΣMν/3 at scale factor a, in canonical
// velocity units u = a²ẋ (so the canonical thermal spread is a·v_th,proper;
// at the non-relativistic redshifts simulated this equals a × the proper
// value, which conveniently makes the canonical distribution static).
func (p Params) NuThermalVelocity(a float64) float64 {
	m := p.SumMNuEV / 3
	// The canonical velocity of a fixed comoving momentum is constant in
	// time: u = a·v_proper(a) = v_proper(a=1). The velocity-grid extent can
	// therefore be chosen once at start-up; a is accepted for interface
	// symmetry but does not enter.
	_ = a
	return units.NeutrinoThermalVelocity(m, 1.0)
}

// FreeStreamingWavenumber returns the neutrino free-streaming scale
// k_fs(a) = sqrt(3/2 Ωm(a)) a H(a) / v_th,proper(a) in h/Mpc.
func (p Params) FreeStreamingWavenumber(a float64) float64 {
	vth := units.NeutrinoThermalVelocity(p.SumMNuEV/3, a)
	omA := p.OmegaM / (a * a * a) / (p.E(a) * p.E(a))
	return math.Sqrt(1.5*omA) * a * p.Hubble(a) / vth
}

// simpson integrates f over [a,b] with n (even) panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
