package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// fillBrick populates a brick with a deterministic smooth-plus-noise field so
// bitwise comparisons exercise non-trivial mantissas.
func fillBrick(b *Brick, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range b.Data {
		b.Data[i] = float32(1 + 0.5*math.Sin(float64(i)*0.01) + 0.1*rng.Float64())
	}
}

// sweepCase enumerates every (axis, mode) combination Sweep accepts on a
// 6D brick.
type sweepCase struct {
	axis int
	mode Mode
}

func allSweepCases(nd int) []sweepCase {
	var cases []sweepCase
	for axis := 0; axis < nd; axis++ {
		cases = append(cases, sweepCase{axis, Strided}, sweepCase{axis, Contig})
	}
	cases = append(cases, sweepCase{nd - 1, LAT})
	return cases
}

// TestParallelSweepBitIdentical proves the SetWorkers contract: for every
// mode, every axis and several worker counts (including counts that do not
// divide the work evenly), the parallel sweep produces bit-identical data to
// the serial sweep.
func TestParallelSweepBitIdentical(t *testing.T) {
	dims := []int{6, 6, 6, 16, 16, 16}
	for _, tc := range allSweepCases(len(dims)) {
		ref, err := NewBrick(dims...)
		if err != nil {
			t.Fatal(err)
		}
		fillBrick(ref, 42)
		if err := ref.Sweep(tc.axis, tc.mode, 0.37); err != nil {
			t.Fatalf("serial sweep axis %d mode %v: %v", tc.axis, tc.mode, err)
		}
		for _, nw := range []int{2, 3, 5, 16} {
			par, err := NewBrick(dims...)
			if err != nil {
				t.Fatal(err)
			}
			fillBrick(par, 42)
			par.SetWorkers(nw)
			if err := par.Sweep(tc.axis, tc.mode, 0.37); err != nil {
				t.Fatalf("parallel sweep axis %d mode %v workers %d: %v", tc.axis, tc.mode, nw, err)
			}
			for i := range ref.Data {
				if ref.Data[i] != par.Data[i] {
					t.Fatalf("axis %d mode %v workers %d: data[%d] = %x, serial %x",
						tc.axis, tc.mode, nw, i, par.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestParallelSweepRepeatedBitIdentical runs a multi-axis sweep sequence
// (the shape of a real splitting step, with arena reuse across calls) and
// checks serial/parallel bit identity of the composite.
func TestParallelSweepRepeatedBitIdentical(t *testing.T) {
	dims := []int{6, 6, 6, 16, 16, 16}
	run := func(workers int) *Brick {
		b, err := NewBrick(dims...)
		if err != nil {
			t.Fatal(err)
		}
		fillBrick(b, 7)
		b.SetWorkers(workers)
		for rep := 0; rep < 3; rep++ {
			for axis := 0; axis < len(dims); axis++ {
				if err := b.Sweep(axis, Contig, 0.25); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Sweep(len(dims)-1, LAT, 0.25); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	ref := run(1)
	par := run(3)
	for i := range ref.Data {
		if ref.Data[i] != par.Data[i] {
			t.Fatalf("composite sweep differs at %d: %x vs %x", i, par.Data[i], ref.Data[i])
		}
	}
}

// TestSweepSteadyStateZeroAlloc asserts the arena contract: after a warm-up
// sweep of each (axis, mode), repeating the whole sweep set allocates
// nothing.
func TestSweepSteadyStateZeroAlloc(t *testing.T) {
	dims := []int{6, 6, 6, 16, 16, 16}
	b, err := NewBrick(dims...)
	if err != nil {
		t.Fatal(err)
	}
	fillBrick(b, 3)
	cases := allSweepCases(len(dims))
	sweepAll := func() {
		for _, tc := range cases {
			if err := b.Sweep(tc.axis, tc.mode, 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	sweepAll() // warm the arena
	if allocs := testing.AllocsPerRun(20, sweepAll); allocs != 0 {
		t.Fatalf("steady-state sweeps allocate %.1f allocs/op, want 0", allocs)
	}
}

// TestBlockColsCacheModel pins the cache-model invariants: block widths are
// TileB multiples, never exceed the plane width, and the modelled working
// set fits the target.
func TestBlockColsCacheModel(t *testing.T) {
	for _, n := range []int{6, 16, 24, 64, 256} {
		for _, width := range []int{16, 100, 2048, 1 << 20} {
			cw := blockCols(n, width)
			if cw < 1 || cw > width && width >= TileB {
				t.Fatalf("blockCols(%d,%d) = %d out of range", n, width, cw)
			}
			if cw > TileB && cw%TileB != 0 && cw != width {
				t.Fatalf("blockCols(%d,%d) = %d not a TileB multiple", n, width, cw)
			}
			if cw > TileB && 4*(2*n+1)*cw > CacheTarget && cw != width {
				t.Fatalf("blockCols(%d,%d) = %d overflows CacheTarget", n, width, cw)
			}
		}
		bg := latGroupCols(n)
		if bg < TileB || bg%TileB != 0 {
			t.Fatalf("latGroupCols(%d) = %d not a positive TileB multiple", n, bg)
		}
		if bg > TileB && 4*(3*n+1)*bg > CacheTarget {
			t.Fatalf("latGroupCols(%d) = %d overflows CacheTarget", n, bg)
		}
	}
}
