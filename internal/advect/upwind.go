package advect

import (
	"fmt"
	"math"
)

// Upwind1 is the first-order donor-cell scheme, the most diffusive baseline.
type Upwind1 struct{ buf []float64 }

// NewUpwind1 returns a first-order upwind scheme.
func NewUpwind1() *Upwind1 { return &Upwind1{} }

// Name implements Scheme.
func (u *Upwind1) Name() string { return "upwind1" }

// Stages implements Scheme.
func (u *Upwind1) Stages() int { return 1 }

// MaxCFL implements Scheme.
func (u *Upwind1) MaxCFL() float64 { return 1.0 }

// Clone implements Scheme.
func (u *Upwind1) Clone() Scheme { return &Upwind1{} }

// Step implements Scheme.
func (u *Upwind1) Step(f []float64, c float64) error {
	n := len(f)
	if n < 2 {
		return fmt.Errorf("upwind1: line length %d < 2", n)
	}
	if math.Abs(c) > 1 {
		return fmt.Errorf("upwind1: CFL %v exceeds 1", c)
	}
	if cap(u.buf) < n {
		u.buf = make([]float64, n)
	}
	buf := u.buf[:n]
	copy(buf, f)
	if c >= 0 {
		for i := 0; i < n; i++ {
			f[i] = buf[i] - c*(buf[i]-buf[mod(i-1, n)])
		}
	} else {
		for i := 0; i < n; i++ {
			f[i] = buf[i] - c*(buf[mod(i+1, n)]-buf[i])
		}
	}
	return nil
}

// LaxWendroff2 is the classical second-order scheme (dispersive, produces
// oscillations at discontinuities — it is included to demonstrate what the
// MP limiter buys).
type LaxWendroff2 struct{ buf []float64 }

// NewLaxWendroff2 returns a Lax–Wendroff scheme.
func NewLaxWendroff2() *LaxWendroff2 { return &LaxWendroff2{} }

// Name implements Scheme.
func (l *LaxWendroff2) Name() string { return "laxwendroff2" }

// Stages implements Scheme.
func (l *LaxWendroff2) Stages() int { return 1 }

// MaxCFL implements Scheme.
func (l *LaxWendroff2) MaxCFL() float64 { return 1.0 }

// Clone implements Scheme.
func (l *LaxWendroff2) Clone() Scheme { return &LaxWendroff2{} }

// Step implements Scheme.
func (l *LaxWendroff2) Step(f []float64, c float64) error {
	n := len(f)
	if n < 3 {
		return fmt.Errorf("laxwendroff2: line length %d < 3", n)
	}
	if math.Abs(c) > 1 {
		return fmt.Errorf("laxwendroff2: CFL %v exceeds 1", c)
	}
	if cap(l.buf) < n {
		l.buf = make([]float64, n)
	}
	buf := l.buf[:n]
	copy(buf, f)
	for i := 0; i < n; i++ {
		fm := buf[mod(i-1, n)]
		fp := buf[mod(i+1, n)]
		f[i] = buf[i] - 0.5*c*(fp-fm) + 0.5*c*c*(fp-2*buf[i]+fm)
	}
	return nil
}
