package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGInternalValue(t *testing.T) {
	// With Mpc lengths G = 43.0071 (the GADGET value 43007.1 is for kpc).
	if math.Abs(G-43.0071)/43.0071 > 2e-3 {
		t.Fatalf("G = %v, want ≈ 43.0071", G)
	}
}

func TestRhoCrit0(t *testing.T) {
	// ρ_crit = 3H₀²/8πG ≈ 27.75 ×10¹⁰ h²M_sun/(Mpc/h)³.
	got := RhoCrit0()
	if math.Abs(got-27.75)/27.75 > 5e-3 {
		t.Fatalf("RhoCrit0 = %v, want ≈ 27.75", got)
	}
}

func TestNeutrinoThermalVelocity(t *testing.T) {
	// Standard result: v_th ≈ 158 (1+z) (1 eV/mν) km/s within a few %.
	v := NeutrinoThermalVelocity(1.0, 1.0)
	if math.Abs(v-158)/158 > 0.05 {
		t.Fatalf("v_th(1eV, a=1) = %v km/s, want ≈ 158", v)
	}
	// Scales like 1/a and 1/m.
	v2 := NeutrinoThermalVelocity(1.0, 0.5)
	if math.Abs(v2-2*v)/v > 1e-12 {
		t.Fatalf("v_th should scale as 1/a: %v vs %v", v2, 2*v)
	}
	v3 := NeutrinoThermalVelocity(2.0, 1.0)
	if math.Abs(v3-v/2)/v > 1e-12 {
		t.Fatalf("v_th should scale as 1/m: %v vs %v", v3, v/2)
	}
}

func TestOmegaNuFromMass(t *testing.T) {
	// Mν = 0.4 eV, h = 0.7: Ων ≈ 0.4/(93.14·0.49) ≈ 0.00876.
	got := OmegaNuFromMass(0.4, 0.7)
	want := 0.4 / (93.14 * 0.49)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("OmegaNu = %v, want %v", got, want)
	}
	if got < 1e-3 || got > 1e-2 {
		t.Fatalf("OmegaNu out of the paper's 10⁻³–10⁻² range: %v", got)
	}
}

func TestFermiDiracProperties(t *testing.T) {
	if got := FermiDirac(0); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("FD(0) = %v, want 0.5", got)
	}
	// Monotone decreasing and bounded in (0, 1/2].
	f := func(y float64) bool {
		y = math.Abs(y)
		a, b := FermiDirac(y), FermiDirac(y+1)
		return a >= b && a <= 0.5 && b >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFermiDiracNormIntegral(t *testing.T) {
	// Trapezoid integration of y²/(e^y+1) should match 3ζ(3)/2.
	const n = 200000
	const ymax = 60.0
	h := ymax / n
	sum := 0.0
	for i := 1; i < n; i++ {
		y := float64(i) * h
		sum += y * y * FermiDirac(y)
	}
	sum *= h
	if math.Abs(sum-FermiDiracNorm) > 1e-6 {
		t.Fatalf("∫y²FD = %v, want %v", sum, FermiDiracNorm)
	}
}
