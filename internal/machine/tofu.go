package machine

import "fmt"

// TofuD models the Tofu interconnect D of Fugaku: a six-dimensional
// mesh/torus with shape 24×23×24×2×3×2 (§6.1), where the (a, b, c) axes of
// size (2, 3, 2) are the intra-group links and (x, y, z) the inter-group
// torus. The paper places MPI processes so that "communications between
// physically adjacent domains are kept fenced within a single hop"; this
// model lets the communication terms of Step reason about hop counts and
// bisection width instead of a flat bandwidth.
type TofuD struct {
	Shape [6]int
	// Periodic marks which axes are tori (the x, z and b axes of Tofu-D
	// wrap; y is a mesh on Fugaku).
	Periodic [6]bool
}

// FugakuTofu returns the full-system Tofu-D of the paper.
func FugakuTofu() TofuD {
	return TofuD{
		Shape:    [6]int{24, 23, 24, 2, 3, 2},
		Periodic: [6]bool{true, false, true, false, true, false},
	}
}

// Nodes returns the total node count of the network shape.
func (t TofuD) Nodes() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Coords maps a node rank (row-major over the six axes) to its coordinates.
func (t TofuD) Coords(rank int) ([6]int, error) {
	if rank < 0 || rank >= t.Nodes() {
		return [6]int{}, fmt.Errorf("machine: node %d outside the %d-node network", rank, t.Nodes())
	}
	var c [6]int
	for d := 5; d >= 0; d-- {
		c[d] = rank % t.Shape[d]
		rank /= t.Shape[d]
	}
	return c, nil
}

// HopDistance returns the minimal hop count between two nodes, honouring
// per-axis wrap-around.
func (t TofuD) HopDistance(a, b [6]int) int {
	hops := 0
	for d := 0; d < 6; d++ {
		diff := a[d] - b[d]
		if diff < 0 {
			diff = -diff
		}
		if t.Periodic[d] {
			if w := t.Shape[d] - diff; w < diff {
				diff = w
			}
		}
		hops += diff
	}
	return hops
}

// BisectionLinks returns the number of links crossing a bisection of the
// network along its longest axis — the denominator of all-to-all transfer
// time at scale. For a torus axis the cut is crossed twice per
// perpendicular node column, once for a mesh axis.
func (t TofuD) BisectionLinks() int {
	longest, li := 0, 0
	for d, s := range t.Shape {
		if s > longest {
			longest, li = s, d
		}
	}
	perp := t.Nodes() / t.Shape[li]
	if t.Periodic[li] {
		return 2 * perp
	}
	return perp
}

// NeighbourSingleHop reports whether the paper's placement claim holds for
// two nodes: adjacent sub-domains map to nodes within one hop.
func (t TofuD) NeighbourSingleHop(a, b [6]int) bool {
	return t.HopDistance(a, b) <= 1
}
