// Two-stream instability: two counter-streaming electron beams are linearly
// unstable — the field energy grows exponentially, then saturates by
// trapping particles into the famous phase-space vortex.
//
// The example runs the same instability under three advection schemes
// *concurrently* through the batch scheduler: the paper's SL-MPP5, the
// conventional MP5+RK3 comparator, and the unlimited second-order
// Lax-Wendroff baseline. All three capture the exponential growth; only
// the MP/PP-limited schemes keep f non-negative through the strongly
// nonlinear trapping stage — exactly what the paper's limiters are for,
// measured rather than asserted.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
)

const (
	k     = 0.2
	v0    = 2.4
	vth   = 0.5
	alpha = 1e-3
	tEnd  = 60.0
)

// jobState is one scheme's solver and growth history. The factory and
// observer of a job run on the worker that owns it; the final reads below
// happen after RunBatch returns, which orders them after every worker.
type jobState struct {
	solver *vlasov6d.PlasmaSolver
	e0, m0 float64
	peak   float64
}

func main() {
	log.SetFlags(0)
	schemes := []string{"slmpp5", "mp5", "laxwendroff2"}
	states := make([]*jobState, len(schemes))
	jobs := make([]vlasov6d.BatchJob, len(schemes))
	for i, name := range schemes {
		st := &jobState{}
		states[i] = st
		name := name
		jobs[i] = vlasov6d.BatchJob{
			Name:  name,
			Until: tEnd,
			New: func() (vlasov6d.Solver, error) {
				s, err := vlasov6d.NewPlasmaSolverWithScheme(64, 128, 2*math.Pi/k, 8, name)
				if err != nil {
					return nil, err
				}
				s.TwoStreamInit(alpha, k, v0, vth)
				st.solver, st.e0, st.m0 = s, s.FieldEnergy(), s.TotalMass()
				st.peak = st.e0
				return s, nil
			},
			Opts: []vlasov6d.RunOption{
				// The growth history rides along as a per-step observer.
				vlasov6d.WithObserver(func(step int, s vlasov6d.Solver) error {
					if e := s.Diagnostics().Extra["field_energy"]; e > st.peak {
						st.peak = e
					}
					return nil
				}),
			},
		}
	}

	fmt.Printf("two-stream instability: beams at ±%.1f, k = %.2f — %d schemes on one worker pool\n",
		v0, k, len(schemes))
	results, err := vlasov6d.RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %12s %12s %14s %s\n",
		"scheme", "growth ×", "mass drift", "min f", "positive?")
	for i, r := range results {
		if r.Status != vlasov6d.JobDone {
			log.Fatalf("job %s: %v (%v)", r.Name, r.Status, r.Err)
		}
		st := states[i]
		minF := math.Inf(1)
		for _, v := range st.solver.F {
			if v < minF {
				minF = v
			}
		}
		drift := (st.solver.TotalMass() - st.m0) / st.m0
		fmt.Printf("%-14s %12.1e %+12.1e %14.3e %v\n",
			r.Name, st.peak/st.e0, drift, minF, minF >= 0)
	}
	fmt.Println("\nall schemes see the instability; the MP/PP-limited ones stay positive")
	fmt.Println("(SL-MPP5 exactly, MP5 to round-off) while the unlimited baseline undershoots")
	fmt.Println("by nine orders more and leaks mass — the paper's limiter argument, measured.")
}
