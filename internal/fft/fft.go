// Package fft provides the fast Fourier transforms required by the particle-
// mesh gravity solver: an iterative radix-2 complex FFT, a Bluestein fallback
// for arbitrary lengths (the paper's grids are 96·2ᵏ per side, which are not
// powers of two), and cache-friendly parallel 3D transforms.
//
// The paper offloads this to the Fujitsu SSL II 2D-decomposed FFT; here the
// transform is our own, and the distributed-memory version in package decomp
// reproduces the 3D→2D data-layout exchange the paper describes.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan caches the twiddle factors and scratch buffers for complex transforms
// of a fixed length n. A Plan is not safe for concurrent use; callers that
// transform lines in parallel create one Plan per worker.
type Plan struct {
	n       int
	pow2    bool
	twiddle []complex128 // radix-2 twiddles, size n/2 (pow2 only)
	rev     []int        // bit-reversal permutation (pow2 only)

	// Bluestein machinery (non-power-of-two lengths).
	m     int          // power-of-two length ≥ 2n-1
	chirp []complex128 // e^{-iπk²/n}, length n
	bfft  *Plan        // inner power-of-two plan of length m
	bKern []complex128 // FFT of the chirp kernel, length m
	scrA  []complex128
	scrB  []complex128
}

// NewPlan creates a transform plan for length n ≥ 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid length %d", n)
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.twiddle = make([]complex128, n/2)
		for k := range p.twiddle {
			ang := -2 * math.Pi * float64(k) / float64(n)
			p.twiddle[k] = cmplx.Exp(complex(0, ang))
		}
		p.rev = bitRevTable(n)
		return p, nil
	}
	// Bluestein: convolve with a chirp on a power-of-two length m ≥ 2n-1.
	m := 1 << bits.Len(uint(2*n-2))
	inner, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	p.m = m
	p.bfft = inner
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		k2 := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(k2) / float64(n)
		p.chirp[k] = cmplx.Exp(complex(0, ang))
	}
	kern := make([]complex128, m)
	kern[0] = cmplx.Conj(p.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(p.chirp[k])
		kern[k] = c
		kern[m-k] = c
	}
	inner.forwardPow2(kern)
	p.bKern = kern
	p.scrA = make([]complex128, m)
	p.scrB = make([]complex128, m)
	return p, nil
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place forward DFT
// X[k] = Σ_j x[j]·e^{-2πi jk/n}. len(x) must equal Len().
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length mismatch %d != %d", len(x), p.n))
	}
	if p.pow2 {
		p.forwardPow2(x)
		return
	}
	p.bluestein(x)
}

// Inverse computes the in-place inverse DFT including the 1/n normalisation.
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length mismatch %d != %d", len(x), p.n))
	}
	// IFFT(x) = conj(FFT(conj(x)))/n.
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	p.Forward(x)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// forwardPow2 is the iterative Cooley-Tukey radix-2 DIT transform.
func (p *Plan) forwardPow2(x []complex128) {
	n := len(x)
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				t := w * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

// bluestein evaluates an arbitrary-length DFT as a chirp-z convolution.
func (p *Plan) bluestein(x []complex128) {
	n, m := p.n, p.m
	a, b := p.scrA, p.scrB
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	p.bfft.forwardPow2(a)
	for i := 0; i < m; i++ {
		b[i] = a[i] * p.bKern[i]
	}
	// Inverse of the inner pow2 transform.
	for i := range b {
		b[i] = cmplx.Conj(b[i])
	}
	p.bfft.forwardPow2(b)
	inv := 1 / float64(m)
	for k := 0; k < n; k++ {
		v := complex(real(b[k])*inv, -imag(b[k])*inv)
		x[k] = v * p.chirp[k]
	}
}

func bitRevTable(n int) []int {
	logn := bits.TrailingZeros(uint(n))
	rev := make([]int, n)
	for i := range rev {
		rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logn))
	}
	return rev
}
