// Command vlasov6d is the main simulation driver: a hybrid Vlasov/N-body
// cosmological run of massive neutrinos and cold dark matter, the Go-scale
// counterpart of the paper's production code, executed under the unified
// Runner API (graceful Ctrl-C cancellation, wall-clock budget, checkpoint
// cadence, restart from a checkpoint).
//
// Example:
//
//	vlasov6d -box 200 -ngrid 12 -nu 10 -npart 12 -mnu 0.4 -zinit 10 -zend 2 \
//	         -checkpoint ckpts -checkpoint-every 50 -checkpoint-keep 3 \
//	         -snapshot out.v6d -spectrum pk.csv
//	vlasov6d -resume ckpts -zend 2   # pick up from the newest checkpoint
//	vlasov6d -resume ckpts/ckpt_00000.25000000.v6d -zend 2   # or a specific one
//
// The run prints a per-step log line (a, z, dt, conservation checks) and the
// final wall-clock decomposition by part (the paper's Fig. 7 categories).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"vlasov6d"
	"vlasov6d/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vlasov6d: ")
	var (
		box       = flag.Float64("box", 200, "comoving box size (h⁻¹Mpc)")
		ngrid     = flag.Int("ngrid", 12, "Vlasov spatial cells per side")
		nuCells   = flag.Int("nu", 10, "velocity cells per side")
		npart     = flag.Int("npart", 12, "CDM particles per side")
		pmf       = flag.Int("pmfactor", 2, "PM mesh refinement over the Vlasov grid")
		mnu       = flag.Float64("mnu", 0.4, "ΣMν (eV)")
		zinit     = flag.Float64("zinit", 10, "starting redshift")
		zend      = flag.Float64("zend", 0, "final redshift")
		scheme    = flag.String("scheme", "slmpp5", "advection scheme: slmpp5|mp5|upwind1|laxwendroff2")
		seed      = flag.Int64("seed", 20211114, "IC random seed")
		baseline  = flag.Bool("nu-particles", false, "use the TianNu-style ν-particle baseline instead of the Vlasov grid")
		resume    = flag.String("resume", "", "restart from this snapshot file — or the newest checkpoint when given a directory")
		ckptDir   = flag.String("checkpoint", "", "write checkpoints into this directory")
		ckptEvery = flag.Int("checkpoint-every", 50, "checkpoint cadence in steps")
		ckptKeep  = flag.Int("checkpoint-keep", 0, "keep only the newest N checkpoints (0 = keep all)")
		wall      = flag.Duration("wall", 0, "wall-clock budget (0 = unlimited), e.g. 30m")
		maxSteps  = flag.Int("max-steps", 1000000, "step budget (0 = unlimited)")
		snap      = flag.String("snapshot", "", "write a final snapshot to this path")
		spectrum  = flag.String("spectrum", "", "write the final total-matter P(k) CSV to this path")
		logEvery  = flag.Int("log-every", 10, "progress log cadence in steps")
	)
	flag.Parse()

	cfg := vlasov6d.Config{
		Par:       vlasov6d.Planck2015(*mnu),
		Box:       *box,
		NGrid:     *ngrid,
		NU:        *nuCells,
		NPartSide: *npart,
		Seed:      *seed,
	}
	opts := []vlasov6d.SimOption{
		vlasov6d.WithScheme(*scheme),
		vlasov6d.WithPMFactor(*pmf),
	}
	if *baseline {
		// The ν-particle baseline checkpoints through snapio format v2's
		// second particle section, so -checkpoint works in every mode.
		opts = append(opts, vlasov6d.WithNuParticleBaseline(0))
	}
	aInit := 1 / (1 + *zinit)
	aEnd := 1 / (1 + *zend)

	var sim *vlasov6d.Simulation
	var err error
	if *resume != "" {
		var sp *vlasov6d.Snapshot
		var src = *resume
		if st, serr := os.Stat(*resume); serr == nil && st.IsDir() {
			sp, src, err = vlasov6d.ResumeLatest(*resume)
		} else {
			var f *os.File
			if f, err = os.Open(*resume); err == nil {
				sp, err = vlasov6d.ReadSnapshot(f)
				f.Close()
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		sim, err = vlasov6d.RestoreSimulation(cfg, sp, opts...)
		if err == nil {
			log.Printf("resumed from %s at a = %.4f (z = %.2f)", src, sim.A, sim.Redshift())
		}
	} else {
		sim, err = vlasov6d.NewSimulation(cfg, aInit, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	nu0, cdm0 := sim.TotalMass()
	log.Printf("box %.0f h⁻¹Mpc, %d³ Vlasov cells × %d³ velocity cells, %d³ particles, ΣMν = %.2f eV",
		*box, *ngrid, *nuCells, *npart, *mnu)
	log.Printf("fν = %.4f, starting at z = %.2f", sim.Cosmo().FNu(), sim.Redshift())

	// Ctrl-C / SIGINT cancels the run gracefully; the final snapshot and
	// spectrum are still written from the partial state.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runOpts := []vlasov6d.RunOption{
		vlasov6d.WithMaxSteps(*maxSteps),
		vlasov6d.WithObserver(func(step int, s vlasov6d.Solver) error {
			if *logEvery > 0 && (step+1)%*logEvery == 0 {
				d := s.Diagnostics()
				loss := d.Extra["boundary_loss"]
				log.Printf("step %4d: a = %.4f (z = %5.2f), ν-mass drift = %+.2e, boundary loss = %.2e",
					step+1, d.Clock, d.Extra["z"], (d.Extra["nu_mass"]+loss-nu0)/nu0, loss/nu0)
			}
			return nil
		}),
	}
	if *wall > 0 {
		runOpts = append(runOpts, vlasov6d.WithWallClock(*wall))
	}
	if *ckptDir != "" {
		runOpts = append(runOpts, vlasov6d.WithCheckpoint(*ckptDir, *ckptEvery))
		if *ckptKeep > 0 {
			runOpts = append(runOpts, vlasov6d.WithCheckpointKeep(*ckptKeep))
		}
		// Snapshot I/O overlaps compute: the hot loop captures state and the
		// async pipeline writes it (a nil observer routes only checkpoints).
		runOpts = append(runOpts, vlasov6d.WithAsyncObserver(nil))
	}
	rep, err := vlasov6d.Run(ctx, sim, aEnd, runOpts...)
	if err != nil {
		if ctx.Err() == nil {
			log.Fatal(err)
		}
		log.Printf("interrupted: %v", err)
	} else if rep.Reason != vlasov6d.ReasonUntil {
		log.Printf("stopped on %v budget after %d steps at z = %.2f", rep.Reason, rep.Steps, sim.Redshift())
	}
	if len(rep.Checkpoints) > 0 {
		log.Printf("checkpoints: %d files, %d bytes, latest %s",
			len(rep.Checkpoints), rep.CheckpointBytes, rep.Checkpoints[len(rep.Checkpoints)-1])
	}

	nu1, cdm1 := sim.TotalMass()
	fmt.Printf("\nrun complete: %d steps to z = %.2f (%.1f s wall)\n",
		rep.Steps, sim.Redshift(), rep.Wall.Seconds())
	fmt.Printf("  CDM mass        : %.6e (drift %+.1e)\n", cdm1, (cdm1-cdm0)/cdm0)
	if nu0 > 0 {
		fmt.Printf("  ν mass          : %.6e (drift %+.1e)\n", nu1, (nu1-nu0)/nu0)
	}
	fmt.Printf("  step time       : %.1f s over %d steps\n", sim.Tim.Total.Seconds(), sim.Tim.Steps)
	fmt.Printf("  part breakdown  : Vlasov %.1fs | tree %.1fs | PM %.1fs | moments %.1fs\n",
		sim.Tim.Vlasov.Seconds(), sim.Tim.Tree.Seconds(), sim.Tim.PM.Seconds(),
		sim.Tim.Moments.Seconds())

	if *snap != "" {
		f, err := os.Create(*snap)
		if err != nil {
			log.Fatal(err)
		}
		n, err := vlasov6d.WriteSnapshot(f, &vlasov6d.Snapshot{A: sim.A, Time: sim.Time, Part: sim.Part, Grid: sim.Grid, NuPart: sim.NuPart})
		if err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("snapshot: %s (%d bytes)", *snap, n)
	}
	if *spectrum != "" {
		mesh := make([]float64, sim.PM.Size())
		if err := sim.Part.CICDeposit(mesh, sim.PM.N); err != nil {
			log.Fatal(err)
		}
		if nuRho := sim.NeutrinoDensityPM(); nuRho != nil {
			for i, v := range nuRho {
				mesh[i] += v
			}
		}
		ks, pk, _, err := analysis.PowerSpectrum(mesh, sim.PM.N[0], *box, 16)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*spectrum)
		if err != nil {
			log.Fatal(err)
		}
		if err := analysis.WriteCSV(f, []string{"k_h_Mpc", "Pk_Mpc3_h3"}, ks, pk); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("power spectrum: %s (%d bins)", *spectrum, len(ks))
	}
}
