package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vlasov6d/internal/catalog"
)

// newTestServer builds a server + httptest front end over the default
// catalog.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.Default()
	}
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts a body and decodes the JSON response.
func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

// getJSON fetches a URL and decodes the JSON response.
func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

// pollStatus polls a job until it reaches one of the wanted statuses.
func pollStatus(t *testing.T, base string, id int, want ...string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", base, id))
		if code != http.StatusOK {
			t.Fatalf("job %d status code %d: %v", id, code, body)
		}
		st, _ := body["status"].(string)
		for _, w := range want {
			if st == w {
				return body
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %v", id, want)
	return nil
}

// TestHTTPLifecycle walks the whole service loop: submit by JSON spec →
// observe running → receive SSE diagnostics → cancel mid-run → list and
// download the checkpoint the run left → resubmit the same job name and
// verify it resumes from the snapshot instead of recomputing.
func TestHTTPLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:         2,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 10,
	})
	defer srv.Close()

	// Submit: a Landau run long enough (fixed dt, until 1000 → 1e5 steps)
	// that the cancel below always lands mid-run.
	spec := `{"scenario":"landau","name":"lifecycle","until":1000,"fixed_dt":0.01}`
	code, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	if body["name"] != "lifecycle" {
		t.Fatalf("submit echoed name %v", body["name"])
	}

	// A malformed spec is rejected with a descriptive error.
	if code, errBody := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","params":{"scheme":"psychic"}}`); code != http.StatusBadRequest {
		t.Fatalf("bad spec accepted: %d %v", code, errBody)
	}

	pollStatus(t, ts.URL, id, "running")

	// SSE: tail diagnostics until the run is past the first checkpoint
	// cadence (step ≥ 15 ⇒ the step-10 snapshot exists or is in flight).
	sseResp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/diagnostics", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	if got := sseResp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("SSE content type %q", got)
	}
	sawDiag := false
	scanner := bufio.NewScanner(sseResp.Body)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			continue
		}
		if !strings.HasPrefix(line, "data: ") || event != "diag" {
			continue
		}
		var diag map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &diag); err != nil {
			t.Fatalf("diag payload: %v", err)
		}
		if _, ok := diag["field_energy"]; !ok {
			t.Fatalf("diag payload missing solver extras: %v", diag)
		}
		if step := diag["step"].(float64); step >= 15 {
			sawDiag = true
			break
		}
	}
	sseResp.Body.Close()
	if !sawDiag {
		t.Fatal("SSE stream ended before delivering diagnostics")
	}

	// Cancel mid-run.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	pollStatus(t, ts.URL, id, "cancelled")

	// The checkpoints the cancelled run left are listed and downloadable.
	code, ckpts := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d/checkpoints", ts.URL, id))
	if code != http.StatusOK {
		t.Fatalf("checkpoints: %d %v", code, ckpts)
	}
	list := ckpts["checkpoints"].([]any)
	if len(list) == 0 {
		t.Fatal("cancelled run left no checkpoints")
	}
	first := list[0].(map[string]any)
	name := first["name"].(string)
	if first["format"] != "solver" { // plasma's private checksummed format
		t.Fatalf("checkpoint format %v", first["format"])
	}
	dl, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoints/%s", ts.URL, id, name))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(dl.Body)
	dl.Body.Close()
	if dl.StatusCode != http.StatusOK || int64(len(blob)) != int64(first["bytes"].(float64)) {
		t.Fatalf("download: %d, %d bytes (listing says %v)", dl.StatusCode, len(blob), first["bytes"])
	}
	// Path traversal and non-checkpoint names are rejected.
	if r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoints/%s", ts.URL, id, "ckpt_..%2f..%2fetc.v6d")); err == nil {
		if r.StatusCode == http.StatusOK {
			t.Fatal("traversal name served")
		}
		r.Body.Close()
	}

	// Resubmit the same job name with a tiny target: the scheduler must
	// resume from the snapshot — whose clock is far past the target — and
	// report immediately, without stepping. A cold start would run one
	// step and stop at clock ≈ 0.01.
	code, body = postJSON(t, ts.URL+"/v1/jobs", `{"scenario":"landau","name":"lifecycle","until":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %v", code, body)
	}
	id2 := int(body["id"].(float64))
	final := pollStatus(t, ts.URL, id2, "done", "failed")
	if final["status"] != "done" {
		t.Fatalf("resumed job: %v", final)
	}
	rep := final["report"].(map[string]any)
	if steps := rep["steps"].(float64); steps != 0 {
		t.Fatalf("resumed job stepped %v times; resume should satisfy the target instantly", steps)
	}
	if clock := rep["clock"].(float64); clock < 0.05 {
		t.Fatalf("resumed clock %v: job cold-started instead of resuming", clock)
	}

	// Metrics moved: 2 submissions, 1 completed, 1 cancelled.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"vlasovd_jobs_submitted_total 2",
		"vlasovd_jobs_completed_total 1",
		"vlasovd_jobs_cancelled_total 1",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// The full job list includes both submissions.
	code, listBody := getJSON(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(listBody["jobs"].([]any)) != 2 {
		t.Fatalf("job list: %d %v", code, listBody)
	}
}

func TestScenariosEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer srv.Close()
	code, body := getJSON(t, ts.URL+"/v1/scenarios")
	if code != http.StatusOK {
		t.Fatalf("scenarios: %d", code)
	}
	scs := body["scenarios"].([]any)
	if len(scs) != 5 {
		t.Fatalf("%d scenarios listed", len(scs))
	}
	first := scs[0].(map[string]any)
	if first["name"] != "landau" || first["params"] == nil {
		t.Fatalf("scenario listing shape: %v", first)
	}
}

func TestDrainGraceful(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	// A short job that finishes on its own.
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"quick","until":0.5}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	// Intake is closed: a new submission is refused with 503.
	code, _ = postJSON(t, ts.URL+"/v1/jobs", `{"scenario":"landau"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d", code)
	}
	// The drained job completed rather than being cancelled.
	code, final := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, int(body["id"].(float64))))
	if code != http.StatusOK || final["status"] != "done" {
		t.Fatalf("drained job: %d %v", code, final)
	}
}

func TestDrainDeadlineCancels(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	// Effectively endless job.
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"endless","until":1000000,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatus(t, ts.URL, id, "running")
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain of an endless job returned clean")
	}
	code, final := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
	if code != http.StatusOK || final["status"] != "cancelled" {
		t.Fatalf("deadline-drained job: %d %v", code, final)
	}
}
